// Golden-trace determinism harness for the simulator hot path.
//
// Replays a fixed grid of (tree family, algorithm, k) cells with fixed
// seeds and asserts the exact observable outcome of every run: rounds,
// edge events, total reanchors and the full reanchors-by-depth
// histogram. The expected values below were recorded from the
// implementation BEFORE the flat-state refactor (map/set open-node
// index, per-call candidate copies); any representation change that
// alters a single simulated decision shows up as a mismatch here.
//
// To re-record after an *intentional* behavior change, run with
// BFDN_GOLDEN_RECORD=1 and paste the printed table over kGolden.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "adversarial/async_scheduler.h"
#include "adversarial/schedules.h"
#include "baselines/bfs_levels.h"
#include "baselines/cte.h"
#include "core/bfdn.h"
#include "distributed/writeread.h"
#include "graph/generators.h"
#include "graph/grid_world.h"
#include "graphexp/graph_bfdn.h"
#include "recursive/bfdn_ell.h"
#include "sim/engine.h"

namespace bfdn {
namespace {

struct CellResult {
  std::string cell;
  std::int64_t rounds = 0;
  std::int64_t edge_events = 0;
  std::int64_t total_reanchors = 0;
  std::string reanchors_by_depth;
};

struct GoldenRow {
  const char* cell;
  std::int64_t rounds;
  std::int64_t edge_events;
  std::int64_t total_reanchors;
  const char* reanchors_by_depth;
};

CellResult run_tree_cell(const std::string& cell, const Tree& tree,
                         Algorithm& algorithm, std::int32_t k) {
  RunConfig config;
  config.num_robots = k;
  const RunResult result = run_exploration(tree, algorithm, config);
  CellResult out;
  out.cell = cell;
  out.rounds = result.rounds;
  out.edge_events = result.edge_events;
  out.total_reanchors = result.total_reanchors;
  out.reanchors_by_depth = result.reanchors_by_depth.to_string();
  return out;
}

std::vector<CellResult> run_grid() {
  std::vector<CellResult> results;

  const auto bfdn_cell = [&](const std::string& name, const Tree& tree,
                             std::int32_t k, BfdnOptions options) {
    BfdnAlgorithm algorithm(k, options);
    results.push_back(run_tree_cell(name, tree, algorithm, k));
  };

  // --- BFDN on the canonical shapes, one cell per reanchor policy ----
  const Tree comb = make_comb(12, 6);
  bfdn_cell("comb12x6/bfdn-ll/k4", comb, 4, BfdnOptions{});
  {
    BfdnOptions options;
    options.policy = ReanchorPolicy::kRandom;
    options.seed = 7;
    bfdn_cell("comb12x6/bfdn-random/k4", comb, 4, options);
  }
  {
    BfdnOptions options;
    options.shortcut_reanchor = true;
    bfdn_cell("comb12x6/bfdn-shortcut/k4", comb, 4, options);
  }

  const Tree bary = make_complete_bary(3, 6);
  bfdn_cell("bary3d6/bfdn-ll/k16", bary, 16, BfdnOptions{});
  {
    BfdnOptions options;
    options.policy = ReanchorPolicy::kFirstFit;
    bfdn_cell("bary3d6/bfdn-firstfit/k16", bary, 16, options);
  }
  {
    BfdnOptions options;
    options.policy = ReanchorPolicy::kMostLoaded;
    bfdn_cell("caterpillar40x3/bfdn-ml/k8", make_caterpillar(40, 3), 8,
              options);
  }

  bfdn_cell("star200/bfdn-ll/k8", make_star(200), 8, BfdnOptions{});
  bfdn_cell("spider9x15/bfdn-ll/k8", make_spider(9, 15), 8, BfdnOptions{});
  {
    Rng rng(42);
    bfdn_cell("rrt400/bfdn-ll/k8", make_random_recursive(400, rng), 8,
              BfdnOptions{});
  }
  {
    Rng rng(3);
    BfdnOptions options;
    options.policy = ReanchorPolicy::kRandom;
    options.seed = 11;
    bfdn_cell("leafy500/bfdn-random/k32", make_random_leafy(500, 4, rng),
              32, options);
  }
  {
    BfdnOptions options;
    options.depth_cap = 8;
    bfdn_cell("broom20-30-20/bfdn-cap8/k8", make_double_broom(20, 30, 20),
              8, options);
  }

  // --- Baselines and the recursive variant ---------------------------
  {
    Rng rng(5);
    const Tree hard = make_cte_hard_tree(8, 3, rng);
    CteAlgorithm algorithm(hard, 8);
    results.push_back(run_tree_cell("ctehard8x3/cte/k8", hard, algorithm, 8));
  }
  {
    const Tree broom = make_double_broom(20, 30, 20);
    BfsLevelsAlgorithm algorithm(8);
    results.push_back(
        run_tree_cell("broom20-30-20/bfs-levels/k8", broom, algorithm, 8));
  }
  {
    Rng rng(9);
    const Tree remy = make_remy_binary(300, rng);
    BfdnEllAlgorithm algorithm(16, 2);
    results.push_back(
        run_tree_cell("remy300/bfdn-ell2/k16", remy, algorithm, 16));
  }

  // --- Graph variant (Proposition 9) ---------------------------------
  {
    const GridWorld world = make_serpentine_world(9, 4);
    const GraphExplorationResult result =
        run_graph_bfdn(world.graph(), 6);
    CellResult out;
    out.cell = "serpentine9x4/graph-bfdn/k6";
    out.rounds = result.rounds;
    out.edge_events = result.backtrack_moves;  // proxy: closed-edge legs
    out.total_reanchors = result.total_reanchors;
    out.reanchors_by_depth = result.reanchors_by_depth.to_string();
    results.push_back(out);
  }

  // --- Write-read restricted-memory variant (Proposition 6) ----------
  {
    const Tree comb86 = make_comb(8, 6);
    const WriteReadResult result = run_write_read_bfdn(comb86, 6);
    CellResult out;
    out.cell = "comb8x6/writeread/k6";
    out.rounds = result.rounds;
    out.edge_events = result.max_robot_memory_bits;  // memory high-water
    out.total_reanchors = result.total_reanchors;
    out.reanchors_by_depth = result.reanchors_by_depth.to_string();
    results.push_back(out);
  }

  // --- Adversarial break-down engine path (Proposition 7) -------------
  // Same observable tuple, but the engine runs under a FiniteSchedule:
  // blocked robots are skipped by the sequential assignment and all-stay
  // rounds still count. Horizons are generous, so exploration completes.
  const auto breakdown_cell = [&](const std::string& name, const Tree& tree,
                                  std::int32_t k,
                                  std::unique_ptr<FiniteSchedule> schedule) {
    BfdnAlgorithm algorithm(k, BfdnOptions{});
    RunConfig config;
    config.num_robots = k;
    config.schedule = schedule.get();
    const RunResult result = run_exploration(tree, algorithm, config);
    CellResult out;
    out.cell = name;
    out.rounds = result.rounds;
    out.edge_events = result.edge_events;
    out.total_reanchors = result.total_reanchors;
    out.reanchors_by_depth = result.reanchors_by_depth.to_string();
    results.push_back(out);
  };
  breakdown_cell("comb12x6/bfdn-ll/k4/round-robin", comb, 4,
                 make_round_robin_schedule(4000, 4));
  breakdown_cell("spider9x15/bfdn-ll/k8/burst8", make_spider(9, 15), 8,
                 make_burst_schedule(4000, 8, 8));
  breakdown_cell("star200/bfdn-ll/k8/rolling4", make_star(200), 8,
                 make_rolling_outage_schedule(4000, 8, 4));
  breakdown_cell("rrt400/bfdn-ll/k8/random-p0.6", [] {
    Rng rng(42);
    return make_random_recursive(400, rng);
  }(), 8, make_random_schedule(6000, 8, 0.6, 5));

  // --- Per-robot-clock async engine path -------------------------------
  // Appended after the original grid so the pre-async rows above stay
  // byte-identical. The round-robin cell must reproduce the synchronous
  // comb cell exactly (the oracle's kAsyncEquivalence pins the same fact
  // on every instance); the heterogeneous-speed cells pin the event-loop
  // schedule interleavings bit-exactly.
  const auto async_cell = [&](const std::string& name, const Tree& tree,
                              std::int32_t k, AsyncScheduler& schedule) {
    BfdnAlgorithm algorithm(k, BfdnOptions{});
    RunConfig config;
    config.num_robots = k;
    config.async = &schedule;
    const RunResult result = run_exploration(tree, algorithm, config);
    CellResult out;
    out.cell = name;
    out.rounds = result.rounds;
    out.edge_events = result.edge_events;
    out.total_reanchors = result.total_reanchors;
    out.reanchors_by_depth = result.reanchors_by_depth.to_string();
    results.push_back(out);
  };
  {
    RoundRobinScheduler schedule;
    async_cell("comb12x6/bfdn-ll/k4/async-rr", comb, 4, schedule);
  }
  {
    FixedRateScheduler schedule(4, 2, 2);
    async_cell("comb12x6/bfdn-ll/k4/async-fixed2x2", comb, 4, schedule);
  }
  {
    LaggardScheduler schedule(8, 3, 2);
    async_cell("spider9x15/bfdn-ll/k8/async-laggard3x2", make_spider(9, 15),
               8, schedule);
  }
  {
    RandomScheduler schedule(11, 3);
    async_cell("star200/bfdn-ll/k8/async-random-d3", make_star(200), 8,
               schedule);
  }

  return results;
}

// Recorded from the pre-refactor (seed) implementation; see file header.
const GoldenRow kGolden[] = {
    // clang-format off
    {"comb12x6/bfdn-ll/k4", 78, 166, 18, "0:4 1:2 2:2 3:2 4:2 5:2 6:2 7:2"},
    {"comb12x6/bfdn-random/k4", 78, 166, 18, "0:4 1:2 2:2 3:2 4:2 5:2 6:2 7:2"},
    {"comb12x6/bfdn-shortcut/k4", 65, 166, 22, "0:4 1:3 2:2 3:2 4:3 5:1 6:1 7:3 8:2 12:1"},
    {"bary3d6/bfdn-ll/k16", 157, 2184, 70, "0:16 1:13 2:14 3:10 4:8 5:9"},
    {"bary3d6/bfdn-firstfit/k16", 182, 2184, 147, "0:16 1:33 2:43 3:28 4:18 5:9"},
    {"caterpillar40x3/bfdn-ml/k8", 228, 318, 106, "0:8 1:7 2:7 3:7 4:7 5:7 6:7 7:7 8:7 9:7 10:7 11:7 12:7 13:7 14:7"},
    {"star200/bfdn-ll/k8", 50, 398, 200, "0:200"},
    {"spider9x15/bfdn-ll/k8", 60, 270, 37, "0:16 1:7 3:7 9:7"},
    {"rrt400/bfdn-ll/k8", 126, 798, 36, "0:8 1:6 2:5 3:5 4:3 5:4 6:5"},
    {"leafy500/bfdn-random/k32", 129, 998, 293, "0:32 1:30 2:25 3:29 4:23 5:24 6:27 7:25 8:27 9:26 10:11 11:14"},
    {"broom20-30-20/bfdn-cap8/k8", 100, 140, 29, "0:22 5:1 6:6"},
    {"ctehard8x3/cte/k8", 32, 90, 0, ""},
    {"broom20-30-20/bfs-levels/k8", 1069, 140, 0, ""},
    {"remy300/bfdn-ell2/k16", 555, 1194, 160, "0:4 1:2 2:1 3:3 4:5 5:6 6:7 7:7 8:6 9:3 10:6 11:1 12:6 13:6 14:2 15:2 16:6 18:6 19:5 20:5 21:4 22:2 23:2 24:4 25:3 27:3 28:3 29:3 31:3 32:2 33:2 34:3 35:5 42:3 43:2 44:2 45:2 47:3 48:3 50:3 51:2 54:3 56:3 58:3 64:3"},
    {"serpentine9x4/graph-bfdn/k6", 81, 0, 26, "0:6 1:5 3:5 9:5 27:5"},
    {"comb8x6/writeread/k6", 63, 15, 38, "0:6 1:4 2:5 3:8 4:5 5:4 6:6"},
    // Break-down runs stop when the last node is explored (Section 4.2
    // has no return-home phase), so edge_events < 2(n-1) by design.
    {"comb12x6/bfdn-ll/k4/round-robin", 258, 160, 16, "0:2 1:2 2:2 3:2 4:2 5:2 6:2 7:2"},
    {"spider9x15/bfdn-ll/k8/burst8", 85, 258, 37, "0:16 1:7 3:7 9:7"},
    {"star200/bfdn-ll/k8/rolling4", 99, 395, 200, "0:200"},
    {"rrt400/bfdn-ll/k8/random-p0.6", 193, 794, 35, "0:6 1:6 2:5 3:6 4:3 5:4 6:5"},
    // Async cells: round-robin is bit-identical to the synchronous
    // comb cell above; the heterogeneous-speed rows pin the event-loop
    // interleavings.
    {"comb12x6/bfdn-ll/k4/async-rr", 78, 166, 18, "0:4 1:2 2:2 3:2 4:2 5:2 6:2 7:2"},
    {"comb12x6/bfdn-ll/k4/async-fixed2x2", 89, 166, 17, "0:4 1:2 2:3 3:2 4:2 5:2 6:2"},
    {"spider9x15/bfdn-ll/k8/async-laggard3x2", 60, 270, 29, "0:14 1:5 3:5 9:5"},
    {"star200/bfdn-ll/k8/async-random-d3", 127, 398, 199, "0:199"},
    // clang-format on
};

TEST(GoldenTrace, FixedGridIsBitIdentical) {
  const std::vector<CellResult> results = run_grid();

  if (std::getenv("BFDN_GOLDEN_RECORD") != nullptr) {
    for (const CellResult& r : results) {
      std::printf("    {\"%s\", %lld, %lld, %lld, \"%s\"},\n",
                  r.cell.c_str(), static_cast<long long>(r.rounds),
                  static_cast<long long>(r.edge_events),
                  static_cast<long long>(r.total_reanchors),
                  r.reanchors_by_depth.c_str());
    }
    GTEST_SKIP() << "recording mode: golden table printed to stdout";
  }

  ASSERT_EQ(results.size(), std::size(kGolden));
  for (std::size_t i = 0; i < results.size(); ++i) {
    SCOPED_TRACE(results[i].cell);
    EXPECT_EQ(results[i].cell, kGolden[i].cell);
    EXPECT_EQ(results[i].rounds, kGolden[i].rounds);
    EXPECT_EQ(results[i].edge_events, kGolden[i].edge_events);
    EXPECT_EQ(results[i].total_reanchors, kGolden[i].total_reanchors);
    EXPECT_EQ(results[i].reanchors_by_depth, kGolden[i].reanchors_by_depth);
  }
}

// Lemma 2, tested per depth: for least-loaded BFDN the number of
// anchor *switches* returned at any single depth never exceeds
// k(min{log k, log Delta} + 3). Raw Reanchor-call counts do NOT satisfy
// this (a star sees one call per leaf); the urn-game argument charges
// only calls that change the robot's anchor, which is exactly what
// reanchor_switches_by_depth records.
TEST(GoldenTrace, Lemma2HoldsPerDepthOnGoldenTrees) {
  struct Lemma2Cell {
    std::string name;
    Tree tree;
    std::int32_t k;
  };
  std::vector<Lemma2Cell> cells;
  cells.push_back({"comb12x6/k4", make_comb(12, 6), 4});
  cells.push_back({"bary3d6/k16", make_complete_bary(3, 6), 16});
  cells.push_back({"star200/k8", make_star(200), 8});
  cells.push_back({"spider9x15/k8", make_spider(9, 15), 8});
  cells.push_back({"caterpillar40x3/k8", make_caterpillar(40, 3), 8});
  cells.push_back({"broom20-30-20/k8", make_double_broom(20, 30, 20), 8});
  {
    Rng rng(42);
    cells.push_back({"rrt400/k8", make_random_recursive(400, rng), 8});
  }
  {
    Rng rng(3);
    cells.push_back({"leafy500/k32", make_random_leafy(500, 4, rng), 32});
  }

  for (const Lemma2Cell& cell : cells) {
    SCOPED_TRACE(cell.name);
    BfdnAlgorithm algorithm(cell.k, BfdnOptions{});
    RunConfig config;
    config.num_robots = cell.k;
    const RunResult result = run_exploration(cell.tree, algorithm, config);
    ASSERT_TRUE(result.complete);
    const double bound = lemma2_bound(cell.k, cell.tree.max_degree());
    for (const auto& [depth, switches] :
         result.reanchor_switches_by_depth.buckets()) {
      EXPECT_LE(static_cast<double>(switches), bound)
          << "depth " << depth << ": " << switches
          << " anchor switches exceed k(min{log k, log Delta}+3) = "
          << bound;
    }
    // Sanity on the counting channel itself: switches are a subset of
    // reanchor calls, and every depth with a switch saw a call.
    EXPECT_LE(result.total_reanchor_switches, result.total_reanchors);
    for (const auto& [depth, switches] :
         result.reanchor_switches_by_depth.buckets()) {
      EXPECT_GE(result.reanchors_by_depth.at(depth), switches);
    }
  }
}

// Runs are not just stable against the recorded table but also
// self-deterministic: two executions in one process (fresh algorithm
// and engine state each) must agree exactly.
TEST(GoldenTrace, GridIsSelfDeterministic) {
  const std::vector<CellResult> first = run_grid();
  const std::vector<CellResult> second = run_grid();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    SCOPED_TRACE(first[i].cell);
    EXPECT_EQ(first[i].rounds, second[i].rounds);
    EXPECT_EQ(first[i].edge_events, second[i].edge_events);
    EXPECT_EQ(first[i].total_reanchors, second[i].total_reanchors);
    EXPECT_EQ(first[i].reanchors_by_depth, second[i].reanchors_by_depth);
  }
}

}  // namespace
}  // namespace bfdn
