// Tests for ASCII rendering and Graphviz export.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/depth_next_only.h"
#include "graph/dot.h"
#include "graph/generators.h"
#include "sim/render.h"
#include "support/check.h"

namespace bfdn {
namespace {

TEST(RenderTest, TreeAsciiListsEveryNode) {
  const Tree tree = make_complete_bary(2, 3);
  const std::string out = render_tree_ascii(tree, {});
  // One line per node.
  EXPECT_EQ(static_cast<std::int64_t>(
                std::count(out.begin(), out.end(), '\n')),
            tree.num_nodes());
  EXPECT_NE(out.find("└─"), std::string::npos);
  EXPECT_NE(out.find("├─"), std::string::npos);
}

TEST(RenderTest, AnnotationsAppear) {
  const Tree tree = make_path(3);
  std::vector<std::string> notes(3);
  notes[2] = "<-- here";
  const std::string out = render_tree_ascii(tree, notes);
  EXPECT_NE(out.find("2  <-- here"), std::string::npos);
}

TEST(RenderTest, FrameMarksRobots) {
  const Tree tree = make_star(4);
  TraceFrame frame;
  frame.round = 5;
  frame.positions = {1, 1, 0};
  const std::string out = render_trace_frame(tree, frame);
  EXPECT_NE(out.find("round 5"), std::string::npos);
  EXPECT_NE(out.find("[R0 R1]"), std::string::npos);
  EXPECT_NE(out.find("[R2]"), std::string::npos);
}

TEST(RenderTest, TraceSummaryCountsMoves) {
  const Tree tree = make_path(5);
  DepthNextOnlyAlgorithm algo(2);
  std::vector<TraceFrame> trace;
  RunConfig config;
  config.num_robots = 2;
  config.trace = &trace;
  const RunResult result = run_exploration(tree, algo, config);
  ASSERT_TRUE(result.complete);
  const auto summaries = summarize_trace(tree, trace);
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].moves + summaries[1].moves,
            result.robot_moves[0] + result.robot_moves[1]);
  EXPECT_EQ(std::max(summaries[0].deepest, summaries[1].deepest),
            tree.depth());
}

TEST(RenderTest, EmptyTraceSummaryIsEmpty) {
  EXPECT_TRUE(summarize_trace(make_path(2), {}).empty());
}

TEST(DotTest, TreeDotHasAllEdges) {
  const Tree tree = make_comb(3, 2);
  const std::string out = tree_to_dot(tree);
  EXPECT_NE(out.find("digraph"), std::string::npos);
  std::int64_t arrows = 0;
  for (std::size_t pos = out.find("->"); pos != std::string::npos;
       pos = out.find("->", pos + 1)) {
    ++arrows;
  }
  EXPECT_EQ(arrows, tree.num_edges());
}

TEST(DotTest, GraphDotUndirected) {
  const Graph graph = Graph::from_edges(3, {{0, 1}, {1, 2}, {2, 0}});
  const std::string out = graph_to_dot(graph);
  EXPECT_NE(out.find("graph"), std::string::npos);
  EXPECT_NE(out.find("0 -- 1"), std::string::npos);
  EXPECT_NE(out.find("doublecircle"), std::string::npos);
}

TEST(DotTest, ExplorationDotMarksDanglingAndRobots) {
  const Tree tree = make_path(4);
  std::vector<char> explored{1, 1, 0, 0};
  const std::vector<NodeId> robots{1};
  const std::string out = exploration_to_dot(tree, explored, robots);
  EXPECT_NE(out.find("R: 0"), std::string::npos);      // robot marker
  EXPECT_NE(out.find("label=\"?\""), std::string::npos);  // dangling edge
  EXPECT_NE(out.find("style=dashed"), std::string::npos);
}

TEST(DotTest, ExplorationDotValidatesMaskSize) {
  const Tree tree = make_path(4);
  EXPECT_THROW(exploration_to_dot(tree, {1, 1}, {0}), CheckError);
}

}  // namespace
}  // namespace bfdn
