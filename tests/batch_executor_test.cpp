// Differential tests for sim/BatchExecutor: every batched member must
// be bit-identical to running it alone through run_exploration — the
// executor's one contract — across algorithm kinds, team sizes, seeds,
// mid-batch round caps, coalesced seed-blind twins and the stepped
// fallback, plus the misuse guards (schedule/reactive/async members,
// reuse after run()).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baselines/bfs_levels.h"
#include "baselines/brass.h"
#include "baselines/cte.h"
#include "baselines/depth_next_only.h"
#include "core/bfdn.h"
#include "graph/generators.h"
#include "sim/batch_executor.h"
#include "sim/engine.h"
#include "support/check.h"
#include "support/rng.h"
#include "verify/fuzz.h"

namespace bfdn {
namespace {

/// Full-result equality, field by field, with a readable context label.
void expect_same_result(const RunResult& batched, const RunResult& solo,
                        const std::string& label) {
  EXPECT_EQ(batched.rounds, solo.rounds) << label;
  EXPECT_EQ(batched.complete, solo.complete) << label;
  EXPECT_EQ(batched.all_at_root, solo.all_at_root) << label;
  EXPECT_EQ(batched.hit_round_limit, solo.hit_round_limit) << label;
  EXPECT_EQ(batched.edge_events, solo.edge_events) << label;
  EXPECT_EQ(batched.rounds_with_idle, solo.rounds_with_idle) << label;
  EXPECT_EQ(batched.idle_robot_rounds, solo.idle_robot_rounds) << label;
  EXPECT_EQ(batched.robot_moves, solo.robot_moves) << label;
  EXPECT_EQ(batched.total_reanchors, solo.total_reanchors) << label;
  EXPECT_EQ(batched.total_reanchor_switches, solo.total_reanchor_switches)
      << label;
  EXPECT_EQ(batched.reanchors_by_depth.buckets(),
            solo.reanchors_by_depth.buckets())
      << label;
  EXPECT_EQ(batched.reanchor_switches_by_depth.buckets(),
            solo.reanchor_switches_by_depth.buckets())
      << label;
  EXPECT_EQ(batched.total_activations, solo.total_activations) << label;
  EXPECT_EQ(batched.depth_completed_round, solo.depth_completed_round)
      << label;
  EXPECT_EQ(batched.final_state_hash, solo.final_state_hash) << label;
}

enum class Kind { kBfdn, kBfdnRandom, kBfdnShortcut, kCte, kBfsLevels,
                  kDnSwarm, kBrass };

std::unique_ptr<Algorithm> make_kind(Kind kind, const Tree& tree,
                                     std::int32_t k, std::uint64_t seed) {
  switch (kind) {
    case Kind::kBfdn:
      return std::make_unique<BfdnAlgorithm>(k);
    case Kind::kBfdnRandom: {
      BfdnOptions options;
      options.policy = ReanchorPolicy::kRandom;
      options.seed = seed;
      return std::make_unique<BfdnAlgorithm>(k, options);
    }
    case Kind::kBfdnShortcut: {
      BfdnOptions options;
      options.shortcut_reanchor = true;
      return std::make_unique<BfdnAlgorithm>(k, options);
    }
    case Kind::kCte:
      return std::make_unique<CteAlgorithm>(tree, k);
    case Kind::kBfsLevels:
      return std::make_unique<BfsLevelsAlgorithm>(k);
    case Kind::kDnSwarm:
      return std::make_unique<DepthNextOnlyAlgorithm>(k);
    case Kind::kBrass:
      return std::make_unique<BrassAlgorithm>(k);
  }
  return nullptr;
}

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kBfdn: return "bfdn";
    case Kind::kBfdnRandom: return "bfdn-random";
    case Kind::kBfdnShortcut: return "bfdn-shortcut";
    case Kind::kCte: return "cte";
    case Kind::kBfsLevels: return "bfs-levels";
    case Kind::kDnSwarm: return "dn-swarm";
    case Kind::kBrass: return "brass";
  }
  return "?";
}

std::vector<std::pair<std::string, Tree>> golden_trees() {
  Rng rng(7);
  std::vector<std::pair<std::string, Tree>> trees;
  trees.emplace_back("comb", make_comb(40, 3));
  trees.emplace_back("spider", make_spider(7, 12));
  trees.emplace_back("bary", make_complete_bary(3, 4));
  trees.emplace_back("recursive", make_random_recursive(180, rng));
  return trees;
}

// The golden grid: every (tree, k, algorithm, seed) cell batched
// together per tree and each member compared against its own solo run.
TEST(BatchExecutorTest, GoldenGridBatchedEqualsSolo) {
  const std::vector<Kind> kinds = {
      Kind::kBfdn,     Kind::kBfdnRandom, Kind::kBfdnShortcut,
      Kind::kCte,      Kind::kBfsLevels,  Kind::kDnSwarm,
      Kind::kBrass};
  const std::vector<std::int32_t> team_sizes = {1, 3, 8};
  const std::vector<std::uint64_t> seeds = {1, 99};

  for (const auto& [tree_name, tree] : golden_trees()) {
    BatchExecutor batch(tree);
    std::vector<std::string> labels;
    for (const std::int32_t k : team_sizes) {
      for (const Kind kind : kinds) {
        for (const std::uint64_t seed : seeds) {
          RunConfig config;
          config.num_robots = k;
          batch.add_member(make_kind(kind, tree, k, seed), config);
          labels.push_back(tree_name + "/" + kind_name(kind) + "/k=" +
                           std::to_string(k) + "/seed=" +
                           std::to_string(seed));
        }
      }
    }
    const std::vector<RunResult> results = batch.run();
    ASSERT_EQ(results.size(), labels.size());
    std::size_t slot = 0;
    for (const std::int32_t k : team_sizes) {
      for (const Kind kind : kinds) {
        for (const std::uint64_t seed : seeds) {
          const auto solo_algorithm = make_kind(kind, tree, k, seed);
          RunConfig config;
          config.num_robots = k;
          const RunResult solo =
              run_exploration(tree, *solo_algorithm, config);
          expect_same_result(results[slot], solo, labels[slot]);
          ++slot;
        }
      }
    }
    const auto& stats = batch.stats();
    EXPECT_EQ(stats.members, static_cast<std::int64_t>(labels.size()));
    EXPECT_EQ(stats.distinct_runs, stats.members);  // no coalesce keys
    EXPECT_EQ(stats.interleaved + stats.stepped_fallback,
              stats.distinct_runs);
    // The BFDN members are fast-forwardable, so the interleaved pass is
    // genuinely exercised.
    EXPECT_GT(stats.interleaved, 0) << tree_name;
  }
}

TEST(BatchExecutorTest, WidthOneEqualsSolo) {
  const Tree tree = make_comb(30, 4);
  BatchExecutor batch(tree);
  RunConfig config;
  config.num_robots = 6;
  batch.add_member(std::make_unique<BfdnAlgorithm>(6), config);
  const std::vector<RunResult> results = batch.run();
  ASSERT_EQ(results.size(), 1u);

  BfdnAlgorithm solo(6);
  expect_same_result(results[0], run_exploration(tree, solo, config),
                     "width-1");
  EXPECT_EQ(batch.stats().interleaved, 1);
}

// Round caps are per member: a batch mixing members that hit their
// limit mid-exploration with members that finish must reproduce each
// solo run, including the hit_round_limit accounting.
TEST(BatchExecutorTest, MidBatchRoundCapParity) {
  const Tree tree = make_spider(9, 14);
  const std::vector<std::int64_t> caps = {3, 7, 19, 0};  // 0 = default
  BatchExecutor batch(tree);
  for (const std::int64_t cap : caps) {
    RunConfig config;
    config.num_robots = 4;
    config.max_rounds = cap;
    batch.add_member(std::make_unique<BfdnAlgorithm>(4), config);
  }
  const std::vector<RunResult> results = batch.run();
  for (std::size_t i = 0; i < caps.size(); ++i) {
    BfdnAlgorithm solo(4);
    RunConfig config;
    config.num_robots = 4;
    config.max_rounds = caps[i];
    expect_same_result(results[i], run_exploration(tree, solo, config),
                       "cap=" + std::to_string(caps[i]));
  }
  EXPECT_TRUE(results[0].hit_round_limit);
  EXPECT_FALSE(results[3].hit_round_limit);
}

// Results come back in add_member order no matter how the interleaving
// schedules the runs; reversing the add order permutes the results the
// same way.
TEST(BatchExecutorTest, DeterministicMemberOrdering) {
  const Tree tree = make_comb(25, 5);
  const std::vector<std::int32_t> team_sizes = {5, 1, 3, 8, 2};

  const auto run_order =
      [&tree](const std::vector<std::int32_t>& ks) {
        BatchExecutor batch(tree);
        for (const std::int32_t k : ks) {
          RunConfig config;
          config.num_robots = k;
          batch.add_member(std::make_unique<BfdnAlgorithm>(k), config);
        }
        return batch.run();
      };
  const std::vector<RunResult> forward = run_order(team_sizes);
  std::vector<std::int32_t> reversed_ks(team_sizes.rbegin(),
                                        team_sizes.rend());
  const std::vector<RunResult> backward = run_order(reversed_ks);
  ASSERT_EQ(forward.size(), backward.size());
  for (std::size_t i = 0; i < forward.size(); ++i) {
    expect_same_result(forward[i], backward[forward.size() - 1 - i],
                       "position " + std::to_string(i));
  }
}

// Coalescing: equal non-empty keys replicate the first member's run.
// The replicas must still equal their own solo runs (the caller's
// promise holds here: least-loaded BFDN never reads its seed).
TEST(BatchExecutorTest, CoalescedSeedSweepMatchesSoloRuns) {
  const Tree tree = make_caterpillar(60, 2);
  BatchExecutor batch(tree);
  RunConfig config;
  config.num_robots = 5;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    BfdnOptions options;
    options.seed = seed;  // least-loaded: provably never consumed
    batch.add_member(std::make_unique<BfdnAlgorithm>(5, options), config,
                     "bfdn-least-loaded-k5");
  }
  const std::vector<RunResult> results = batch.run();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    BfdnOptions options;
    options.seed = seed;
    BfdnAlgorithm solo(5, options);
    expect_same_result(results[seed - 1],
                       run_exploration(tree, solo, config),
                       "seed=" + std::to_string(seed));
  }
  const auto& stats = batch.stats();
  EXPECT_EQ(stats.members, 6);
  EXPECT_EQ(stats.distinct_runs, 1);
  EXPECT_EQ(stats.coalesced, 5);
}

// A member carrying per-round hooks rides the documented stepped
// fallback: its observer sees the same per-round hash sequence a solo
// stepped run produces.
TEST(BatchExecutorTest, ObserverMemberRidesSteppedFallback) {
  class HashObserver : public RoundObserver {
   public:
    explicit HashObserver(std::vector<std::uint64_t>& out) : out_(out) {}
    void on_round(std::int64_t /*round*/,
                  const ExplorationState& state) override {
      out_.push_back(state.state_hash());
    }

   private:
    std::vector<std::uint64_t>& out_;
  };

  const Tree tree = make_comb(20, 4);
  RunConfig solo_config;
  solo_config.num_robots = 3;
  std::vector<std::uint64_t> solo_hashes;
  HashObserver solo_observer(solo_hashes);
  solo_config.observer = &solo_observer;
  BfdnAlgorithm solo(3);
  const RunResult solo_result = run_exploration(tree, solo, solo_config);

  BatchExecutor batch(tree);
  std::vector<std::uint64_t> batched_hashes;
  HashObserver batched_observer(batched_hashes);
  RunConfig hooked_config;
  hooked_config.num_robots = 3;
  hooked_config.observer = &batched_observer;
  batch.add_member(std::make_unique<BfdnAlgorithm>(3), hooked_config);
  // A hook-free sibling keeps the interleaved pass busy alongside.
  RunConfig plain_config;
  plain_config.num_robots = 3;
  batch.add_member(std::make_unique<BfdnAlgorithm>(3), plain_config);

  const std::vector<RunResult> results = batch.run();
  expect_same_result(results[0], solo_result, "observed member");
  expect_same_result(results[1], solo_result, "interleaved sibling");
  EXPECT_EQ(batched_hashes, solo_hashes);
  EXPECT_EQ(batch.stats().stepped_fallback, 1);
  EXPECT_EQ(batch.stats().interleaved, 1);
}

TEST(BatchExecutorTest, RejectsScheduleReactiveAndAsyncMembers) {
  const Tree tree = make_comb(10, 2);

  ScheduleSpec schedule;
  schedule.kind = ScheduleKind::kBurst;
  schedule.horizon = 100;
  schedule.period = 2;
  const auto finite = schedule.make(4);

  AsyncSpec async;
  async.kind = AsyncKind::kRoundRobin;
  const auto async_scheduler = async.make(4);

  BatchExecutor batch(tree);
  RunConfig config;
  config.num_robots = 4;

  RunConfig with_schedule = config;
  with_schedule.schedule = finite.get();
  EXPECT_THROW(batch.add_member(std::make_unique<BfdnAlgorithm>(4),
                                with_schedule),
               CheckError);

  RunConfig with_async = config;
  with_async.async = async_scheduler.get();
  EXPECT_THROW(
      batch.add_member(std::make_unique<BfdnAlgorithm>(4), with_async),
      CheckError);

  // Valid members still work after rejected ones.
  batch.add_member(std::make_unique<BfdnAlgorithm>(4), config);
  EXPECT_EQ(batch.num_members(), 1u);
  const std::vector<RunResult> results = batch.run();
  BfdnAlgorithm solo(4);
  expect_same_result(results[0], run_exploration(tree, solo, config),
                     "post-rejection member");
}

TEST(BatchExecutorTest, MisuseAfterRunRejected) {
  const Tree tree = make_comb(8, 2);
  BatchExecutor batch(tree);
  RunConfig config;
  config.num_robots = 2;
  batch.add_member(std::make_unique<BfdnAlgorithm>(2), config);
  (void)batch.run();
  EXPECT_THROW(
      batch.add_member(std::make_unique<BfdnAlgorithm>(2), config),
      CheckError);
  EXPECT_THROW((void)batch.run(), CheckError);
}

// Fuzz smoke: every case carries the batched-campaign differential
// (batch-p = 1), so a few dozen random instances re-verify the
// bit-identity contract end to end through the oracle.
TEST(BatchExecutorTest, FuzzSmokeBatchEquivalence) {
  FuzzOptions options;
  options.seed = 11;
  options.max_cases = 40;
  options.budget_s = 60.0;
  options.max_nodes = 120;
  options.schedule_p = 0.0;  // every case keeps the batch leg
  options.batch_p = 1.0;
  options.batch_width = 4;
  const FuzzReport report = run_fuzz(options);
  EXPECT_TRUE(report.ok()) << report.counterexamples.front().detail;
  EXPECT_EQ(report.cases_run, 40);
}

}  // namespace
}  // namespace bfdn
