// Fast-forward engine equivalence suite (PR 3 tentpole acceptance):
// the event-driven engine must reproduce the stepped engine field by
// field — rounds, final exploration state, idle accounting, per-robot
// move counts, and the Lemma 2 reanchor-switch histogram — across the
// golden-cell grid, under round caps that land mid-transit, and on
// every fuzzed instance with the differential oracle check on.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/depth_next_only.h"
#include "core/bfdn.h"
#include "graph/generators.h"
#include "graph/tree_io.h"
#include "sim/engine.h"
#include "verify/fuzz.h"
#include "verify/spec.h"

namespace bfdn {
namespace {

struct FfCell {
  std::string name;
  Tree tree;
  AlgoSpec algo;
  ScheduleSpec schedule;
};

AlgoSpec bfdn_spec(std::int32_t k, BfdnOptions options = BfdnOptions{}) {
  AlgoSpec spec;
  spec.kind = AlgoKind::kBfdn;
  spec.k = k;
  spec.options = options;
  return spec;
}

AlgoSpec kind_spec(AlgoKind kind, std::int32_t k, std::int32_t ell = 1) {
  AlgoSpec spec;
  spec.kind = kind;
  spec.k = k;
  spec.ell = ell;
  return spec;
}

/// The golden-cell grid, restricted to engine-based kinds (the
/// write-read and graph drivers have no stepped/fast-forward split),
/// plus the adversarial cells, where fast-forward must disable itself.
std::vector<FfCell> make_cells() {
  std::vector<FfCell> cells;
  const auto add = [&cells](std::string name, Tree tree, AlgoSpec algo,
                            ScheduleSpec schedule = {}) {
    cells.push_back({std::move(name), std::move(tree), algo, schedule});
  };

  add("comb12x6/bfdn-ll/k4", make_comb(12, 6), bfdn_spec(4));
  {
    BfdnOptions options;
    options.policy = ReanchorPolicy::kRandom;
    options.seed = 7;
    add("comb12x6/bfdn-random/k4", make_comb(12, 6), bfdn_spec(4, options));
  }
  {
    // Step-only ablation: capability reports kStepOnly, so the engine
    // must fall back (trivially equal runs — but exercises the gate).
    BfdnOptions options;
    options.shortcut_reanchor = true;
    add("comb12x6/bfdn-shortcut/k4", make_comb(12, 6),
        bfdn_spec(4, options));
  }
  add("bary3d6/bfdn-ll/k16", make_complete_bary(3, 6), bfdn_spec(16));
  {
    BfdnOptions options;
    options.policy = ReanchorPolicy::kFirstFit;
    add("bary3d6/bfdn-firstfit/k16", make_complete_bary(3, 6),
        bfdn_spec(16, options));
  }
  {
    BfdnOptions options;
    options.policy = ReanchorPolicy::kMostLoaded;
    add("caterpillar40x3/bfdn-ml/k8", make_caterpillar(40, 3),
        bfdn_spec(8, options));
  }
  add("star200/bfdn-ll/k8", make_star(200), bfdn_spec(8));
  add("spider9x15/bfdn-ll/k8", make_spider(9, 15), bfdn_spec(8));
  {
    Rng rng(42);
    add("rrt400/bfdn-ll/k8", make_random_recursive(400, rng), bfdn_spec(8));
  }
  {
    Rng rng(3);
    BfdnOptions options;
    options.policy = ReanchorPolicy::kRandom;
    options.seed = 11;
    add("leafy500/bfdn-random/k32", make_random_leafy(500, 4, rng),
        bfdn_spec(32, options));
  }
  {
    // Depth-cap variant: exercises the kStayForever parking of inactive
    // robots (and its idle accounting) in the fast-forward loop.
    BfdnOptions options;
    options.depth_cap = 8;
    add("broom20-30-20/bfdn-cap8/k8", make_double_broom(20, 30, 20),
        bfdn_spec(8, options));
  }
  {
    BfdnOptions options;
    options.depth_cap = 2;
    add("comb12x6/bfdn-cap2/k6", make_comb(12, 6), bfdn_spec(6, options));
  }
  // Deep instances: long transit segments, many robots parked mid-walk.
  add("comb60x59/bfdn-ll/k16", make_comb(60, 59), bfdn_spec(16));
  add("caterpillar400x2/bfdn-ll/k64", make_caterpillar(400, 2),
      bfdn_spec(64));
  add("path500/bfdn-ll/k3", make_path(500), bfdn_spec(3));
  add("k-exceeds-n/bfdn-ll/k32", make_comb(4, 2), bfdn_spec(32));
  // Step-only algorithms: the gate must fall back to stepping.
  {
    Rng rng(5);
    add("ctehard8x3/cte/k8", make_cte_hard_tree(8, 3, rng),
        kind_spec(AlgoKind::kCte, 8));
  }
  add("broom20-30-20/bfs-levels/k8", make_double_broom(20, 30, 20),
      kind_spec(AlgoKind::kBfsLevels, 8));
  {
    Rng rng(9);
    add("remy300/bfdn-ell2/k16", make_remy_binary(300, rng),
        kind_spec(AlgoKind::kBfdnEll, 16, 2));
  }
  // Break-down schedules: fast-forward disables itself; both runs step.
  {
    ScheduleSpec schedule;
    schedule.kind = ScheduleKind::kRoundRobin;
    schedule.horizon = 4000;
    add("comb12x6/bfdn-ll/k4/round-robin", make_comb(12, 6), bfdn_spec(4),
        schedule);
  }
  {
    ScheduleSpec schedule;
    schedule.kind = ScheduleKind::kRandom;
    schedule.horizon = 4000;
    schedule.p = 0.6;
    schedule.seed = 5;
    add("spider9x15/bfdn-ll/k8/random", make_spider(9, 15), bfdn_spec(8),
        schedule);
  }
  return cells;
}

RunResult run_cell(const FfCell& cell, bool fast_forward,
                   std::int64_t max_rounds = 0) {
  const std::unique_ptr<Algorithm> algorithm =
      make_algorithm(cell.algo, cell.tree);
  const std::unique_ptr<FiniteSchedule> schedule =
      cell.schedule.make(cell.algo.k);
  RunConfig config;
  config.num_robots = cell.algo.k;
  config.max_rounds = max_rounds;
  config.schedule = schedule.get();
  config.fast_forward = fast_forward;
  return run_exploration(cell.tree, *algorithm, config);
}

void expect_equal_runs(const RunResult& ff, const RunResult& stepped) {
  EXPECT_EQ(ff.rounds, stepped.rounds);
  EXPECT_EQ(ff.complete, stepped.complete);
  EXPECT_EQ(ff.all_at_root, stepped.all_at_root);
  EXPECT_EQ(ff.hit_round_limit, stepped.hit_round_limit);
  EXPECT_EQ(ff.edge_events, stepped.edge_events);
  EXPECT_EQ(ff.rounds_with_idle, stepped.rounds_with_idle);
  EXPECT_EQ(ff.idle_robot_rounds, stepped.idle_robot_rounds);
  EXPECT_EQ(ff.robot_moves, stepped.robot_moves);
  EXPECT_EQ(ff.total_reanchors, stepped.total_reanchors);
  EXPECT_EQ(ff.total_reanchor_switches, stepped.total_reanchor_switches);
  EXPECT_EQ(ff.reanchors_by_depth.to_string(),
            stepped.reanchors_by_depth.to_string());
  EXPECT_EQ(ff.reanchor_switches_by_depth.to_string(),
            stepped.reanchor_switches_by_depth.to_string());
  EXPECT_EQ(ff.depth_completed_round, stepped.depth_completed_round);
  EXPECT_EQ(ff.final_state_hash, stepped.final_state_hash);
}

TEST(FastForward, GoldenCellsAgreeFieldByField) {
  for (const FfCell& cell : make_cells()) {
    SCOPED_TRACE(cell.name);
    expect_equal_runs(run_cell(cell, /*fast_forward=*/true),
                      run_cell(cell, /*fast_forward=*/false));
  }
}

TEST(FastForward, DnSwarmAgrees) {
  const Tree trees[] = {make_comb(30, 10), make_caterpillar(100, 3),
                        make_star(150), make_spider(5, 40)};
  for (const Tree& tree : trees) {
    for (std::int32_t k : {1, 3, 16}) {
      SCOPED_TRACE(testing::Message() << "n=" << tree.num_nodes()
                                      << " k=" << k);
      const auto run_dn = [&](bool ff) {
        DepthNextOnlyAlgorithm algorithm(k);
        RunConfig config;
        config.num_robots = k;
        config.fast_forward = ff;
        return run_exploration(tree, algorithm, config);
      };
      expect_equal_runs(run_dn(true), run_dn(false));
    }
  }
}

TEST(FastForward, RoundCapsLandingMidTransitAgree) {
  // Caps chosen to land in every phase: mid BF descent, mid DN return
  // climb, exactly at an event round, and past natural termination.
  const FfCell cell{"comb25x24/bfdn-ll/k8", make_comb(25, 24),
                    bfdn_spec(8), ScheduleSpec{}};
  const RunResult full = run_cell(cell, /*fast_forward=*/true);
  for (std::int64_t cap :
       {std::int64_t{1}, std::int64_t{2}, std::int64_t{7},
        std::int64_t{25}, std::int64_t{26}, std::int64_t{100},
        std::int64_t{313}, full.rounds, full.rounds + 1,
        full.rounds + 1000}) {
    SCOPED_TRACE(testing::Message() << "cap=" << cap);
    expect_equal_runs(run_cell(cell, /*fast_forward=*/true, cap),
                      run_cell(cell, /*fast_forward=*/false, cap));
  }
}

TEST(FastForward, ObserverForcesSteppedBitExactRounds) {
  // With an observer attached the engine must step even when
  // fast_forward is requested: the per-round hash sequences of a
  // "fast-forward + observer" run and a stepped run are identical.
  class Hashes : public RoundObserver {
   public:
    void on_round(std::int64_t /*round*/,
                  const ExplorationState& state) override {
      hashes.push_back(state.state_hash());
    }
    std::vector<std::uint64_t> hashes;
  };
  const Tree tree = make_spider(9, 15);
  const auto run_observed = [&](bool ff) {
    BfdnAlgorithm algorithm(8);
    Hashes observer;
    RunConfig config;
    config.num_robots = 8;
    config.fast_forward = ff;
    config.observer = &observer;
    run_exploration(tree, algorithm, config);
    return observer.hashes;
  };
  const std::vector<std::uint64_t> with_ff = run_observed(true);
  EXPECT_FALSE(with_ff.empty());
  EXPECT_EQ(with_ff, run_observed(false));
}

TEST(FastForward, FuzzSmokeWithDifferentialCheck) {
  // The oracle now runs the fast-forward-vs-stepped differential on
  // every non-breakdown case; a healthy engine produces no
  // counterexample on this fixed prefix of the case sequence.
  FuzzOptions options;
  options.seed = 20260806;
  options.max_cases = 40;
  options.budget_s = 300.0;
  options.max_nodes = 220;
  const FuzzReport report = run_fuzz(options);
  EXPECT_EQ(report.cases_run, 40);
  for (const FuzzCounterexample& cex : report.counterexamples) {
    ADD_FAILURE() << cex.recipe << " -> " << cex.detail;
  }
}

TEST(FastForward, ParallelFuzzFindsSameMinimalCounterexample) {
  // The --fault demo leak must shrink to the same minimal instance no
  // matter how many workers race on the case sequence.
  FuzzOptions options;
  options.seed = 1;
  options.budget_s = 300.0;
  options.max_cases = 64;
  options.max_nodes = 200;
  options.inject_load_leak = true;

  options.jobs = 1;
  const FuzzReport serial = run_fuzz(options);
  ASSERT_FALSE(serial.ok());

  options.jobs = 4;
  const FuzzReport parallel = run_fuzz(options);
  ASSERT_FALSE(parallel.ok());

  const FuzzCounterexample& a = serial.counterexamples.front();
  const FuzzCounterexample& b = parallel.counterexamples.front();
  EXPECT_EQ(a.case_index, b.case_index);
  EXPECT_EQ(a.check, b.check);
  EXPECT_EQ(a.recipe, b.recipe);
  EXPECT_EQ(a.shrunk.config.k, b.shrunk.config.k);
  EXPECT_EQ(tree_to_text(a.shrunk.tree), tree_to_text(b.shrunk.tree));
}

}  // namespace
}  // namespace bfdn
