// Tests for tree shape statistics.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/tree_stats.h"

namespace bfdn {
namespace {

TEST(TreeStatsTest, PathStats) {
  const TreeStats stats = compute_tree_stats(make_path(10));
  EXPECT_EQ(stats.num_nodes, 10);
  EXPECT_EQ(stats.depth, 9);
  EXPECT_EQ(stats.num_leaves, 1);
  EXPECT_EQ(stats.max_width, 1);
  EXPECT_DOUBLE_EQ(stats.average_branching, 1.0);
  EXPECT_EQ(stats.total_path_length, 45);  // 0+1+...+9
  EXPECT_DOUBLE_EQ(stats.average_depth, 4.5);
}

TEST(TreeStatsTest, StarStats) {
  const TreeStats stats = compute_tree_stats(make_star(10));
  EXPECT_EQ(stats.num_leaves, 9);
  EXPECT_EQ(stats.max_width, 9);
  EXPECT_DOUBLE_EQ(stats.average_branching, 9.0);
  EXPECT_EQ(stats.level_widths[0], 1);
  EXPECT_EQ(stats.level_widths[1], 9);
}

TEST(TreeStatsTest, BinaryStats) {
  const TreeStats stats = compute_tree_stats(make_complete_bary(2, 4));
  EXPECT_EQ(stats.num_nodes, 31);
  EXPECT_EQ(stats.num_leaves, 16);
  EXPECT_EQ(stats.max_width, 16);
  EXPECT_DOUBLE_EQ(stats.average_branching, 2.0);
  for (std::size_t d = 0; d < stats.level_widths.size(); ++d) {
    EXPECT_EQ(stats.level_widths[d], std::int64_t{1} << d);
  }
}

TEST(TreeStatsTest, WidthsSumToNodeCount) {
  Rng rng(3);
  const Tree tree = make_random_leafy(500, 4, rng);
  const TreeStats stats = compute_tree_stats(tree);
  std::int64_t total = 0;
  for (const std::int64_t w : stats.level_widths) total += w;
  EXPECT_EQ(total, tree.num_nodes());
}

TEST(TreeStatsTest, SingleNode) {
  const TreeStats stats = compute_tree_stats(make_path(1));
  EXPECT_EQ(stats.num_leaves, 1);
  EXPECT_DOUBLE_EQ(stats.average_branching, 0.0);
  EXPECT_DOUBLE_EQ(stats.average_depth, 0.0);
}

TEST(TreeStatsTest, WaveCountMatchesHandComputation) {
  // Comb spine 4, teeth 2: internal nodes at each depth are the spine
  // nodes (4 of them, depths 0..3) plus tooth nodes with children
  // (first tooth node of each tooth: depths 1..4).
  const Tree tree = make_comb(4, 2);
  const TreeStats stats = compute_tree_stats(tree);
  // k large: one wave per non-empty open level.
  const std::int64_t waves_wide = bfs_wave_count(stats, tree, 100);
  EXPECT_GE(waves_wide, tree.depth() - 1);
  // k = 1: exactly the number of internal nodes.
  std::int64_t internal = 0;
  for (NodeId v = 0; v < tree.num_nodes(); ++v) {
    internal += tree.num_children(v) > 0;
  }
  EXPECT_EQ(bfs_wave_count(stats, tree, 1), internal);
}

TEST(TreeStatsTest, SummaryStringMentionsKeyFields) {
  const std::string s =
      tree_stats_to_string(compute_tree_stats(make_star(5)));
  EXPECT_NE(s.find("n=5"), std::string::npos);
  EXPECT_NE(s.find("leaves=4"), std::string::npos);
}

}  // namespace
}  // namespace bfdn
