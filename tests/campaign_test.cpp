// Tests for the thread pool and the parallel experiment campaign.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>

#include "exp/adversarial_search.h"
#include "exp/aggregate.h"
#include "exp/campaign.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "support/check.h"
#include "support/thread_pool.h"

namespace bfdn {
namespace {

TEST(ThreadPoolTest, RunsEveryJobExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, WaitIdleOnFreshPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // nothing submitted; must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 250);
}

TEST(ThreadPoolTest, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, NullJobRejected) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), CheckError);
}

TEST(CampaignTest, ResultsAreDeterministicAcrossThreadCounts) {
  Rng rng(99);
  Campaign campaign;
  campaign.add_tree("a", make_tree_with_depth(300, 8, rng));
  campaign.add_tree("b", make_comb(10, 10));
  campaign.add_team_size(4);
  campaign.add_team_size(16);
  campaign.add_algorithm(AlgorithmKind::kBfdn);
  campaign.add_algorithm(AlgorithmKind::kCte);
  EXPECT_EQ(campaign.num_cells(), 8u);

  const auto serial = campaign.run(1);
  const auto parallel = campaign.run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].tree_name, parallel[i].tree_name);
    EXPECT_EQ(serial[i].k, parallel[i].k);
    EXPECT_EQ(serial[i].algorithm, parallel[i].algorithm);
    EXPECT_EQ(serial[i].rounds, parallel[i].rounds);
    EXPECT_TRUE(serial[i].complete);
  }
}

TEST(CampaignTest, AllAlgorithmKindsRun) {
  Rng rng(11);
  Campaign campaign;
  campaign.add_tree("t", make_tree_with_depth(200, 6, rng));
  campaign.add_team_size(9);
  for (AlgorithmKind kind :
       {AlgorithmKind::kBfdn, AlgorithmKind::kBfdnShortcut,
        AlgorithmKind::kCte, AlgorithmKind::kDnSwarm,
        AlgorithmKind::kBfdnEll2, AlgorithmKind::kBfdnEll3,
        AlgorithmKind::kBfsLevels, AlgorithmKind::kBrass}) {
    campaign.add_algorithm(kind);
  }
  const auto results = campaign.run(0);
  ASSERT_EQ(results.size(), 8u);
  for (const CellResult& cell : results) {
    EXPECT_TRUE(cell.complete) << algorithm_kind_name(cell.algorithm);
    EXPECT_GT(cell.rounds, 0);
    EXPECT_GT(cell.ratio_vs_opt, 0.0);
    EXPECT_GE(cell.ratio_vs_lower, 1.0 - 1e-9);
  }
}

TEST(CampaignTest, MetricsMatchDefinitions) {
  Campaign campaign;
  campaign.add_tree("path", make_path(100));
  campaign.add_team_size(2);
  campaign.add_algorithm(AlgorithmKind::kBfdn);
  const auto results = campaign.run(1);
  ASSERT_EQ(results.size(), 1u);
  const CellResult& cell = results[0];
  EXPECT_DOUBLE_EQ(cell.ratio_vs_opt,
                   static_cast<double>(cell.rounds) / (100.0 / 2 + 99));
  EXPECT_DOUBLE_EQ(cell.overhead,
                   static_cast<double>(cell.rounds) - 100.0);
}

TEST(CampaignTest, EmptyCampaignRejected) {
  Campaign campaign;
  EXPECT_THROW(campaign.run(1), CheckError);
}

TEST(AggregateTest, GroupsAndSummarizes) {
  Rng rng(5);
  Campaign campaign;
  campaign.add_tree("t1", make_tree_with_depth(200, 5, rng));
  campaign.add_tree("t2", make_comb(8, 8));
  campaign.add_team_size(4);
  campaign.add_team_size(8);
  campaign.add_algorithm(AlgorithmKind::kBfdn);
  campaign.add_algorithm(AlgorithmKind::kDnSwarm);
  const auto results = campaign.run(2);
  const auto aggregates = aggregate_results(results);
  ASSERT_EQ(aggregates.size(), 4u);  // 2 algorithms x 2 team sizes
  for (const auto& [key, agg] : aggregates) {
    EXPECT_EQ(agg.cells, 2);  // 2 trees each
    EXPECT_EQ(agg.incomplete, 0);
    EXPECT_GT(agg.mean_rounds, 0.0);
    EXPECT_GE(agg.max_ratio_vs_opt, 1.0 - 1e-9)
        << algorithm_kind_name(key.algorithm);
    EXPECT_FALSE(agg.worst_tree.empty());
  }
}

TEST(AggregateTest, CsvHasHeaderAndOneLinePerCell) {
  Rng rng(6);
  Campaign campaign;
  campaign.add_tree("only", make_tree_with_depth(100, 4, rng));
  campaign.add_team_size(3);
  campaign.add_algorithm(AlgorithmKind::kBfdn);
  const auto results = campaign.run(1);
  const std::string csv = results_to_csv(results);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);  // header + 1
  EXPECT_NE(csv.find("tree,n,depth"), std::string::npos);
  EXPECT_NE(csv.find("only,100,4"), std::string::npos);
}

TEST(SingleCellTest, MatchesDirectRun) {
  Rng rng(77);
  const Tree tree = make_tree_with_depth(150, 6, rng);
  const std::int64_t rounds =
      run_single_cell(AlgorithmKind::kBfdn, tree, 5);
  EXPECT_GT(rounds, 0);
  // Deterministic: same call, same answer.
  EXPECT_EQ(run_single_cell(AlgorithmKind::kBfdn, tree, 5), rounds);
}

TEST(AdversarialSearchTest, NeverRegressesAndStaysInBudget) {
  AdversarialSearchOptions options;
  options.n = 120;
  options.max_depth = 20;
  options.k = 6;
  options.iterations = 40;
  options.seed = 9;
  const AdversarialSearchResult result =
      adversarial_search(AlgorithmKind::kBfdn, options);
  EXPECT_GE(result.best_ratio, result.initial_ratio);
  EXPECT_EQ(result.tree.num_nodes(), options.n);
  EXPECT_LE(result.tree.depth(), options.max_depth);
  EXPECT_LE(result.accepted, result.iterations);
  // The evolved instance still respects Theorem 1.
  const std::int64_t rounds =
      run_single_cell(AlgorithmKind::kBfdn, result.tree, options.k);
  EXPECT_LE(static_cast<double>(rounds),
            theorem1_bound(result.tree.num_nodes(), result.tree.depth(),
                           result.tree.max_degree(), options.k));
}

TEST(AdversarialSearchTest, Deterministic) {
  AdversarialSearchOptions options;
  options.n = 80;
  options.max_depth = 15;
  options.k = 4;
  options.iterations = 20;
  options.seed = 31;
  const auto a = adversarial_search(AlgorithmKind::kDnSwarm, options);
  const auto b = adversarial_search(AlgorithmKind::kDnSwarm, options);
  EXPECT_DOUBLE_EQ(a.best_ratio, b.best_ratio);
  EXPECT_EQ(a.accepted, b.accepted);
}

TEST(CampaignTest, NamesAreHuman) {
  EXPECT_EQ(algorithm_kind_name(AlgorithmKind::kBfdn), "BFDN");
  EXPECT_EQ(algorithm_kind_name(AlgorithmKind::kBfdnEll3), "BFDN_3");
}

}  // namespace
}  // namespace bfdn
