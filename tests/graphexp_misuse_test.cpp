// Edge cases and misuse handling of the graph explorer and its inputs.
#include <gtest/gtest.h>

#include "graph/graph.h"
#include "graph/grid_world.h"
#include "graphexp/graph_bfdn.h"
#include "support/check.h"

namespace bfdn {
namespace {

TEST(GraphExpEdgeTest, ZeroRobotsRejected) {
  const Graph graph = Graph::from_edges(2, {{0, 1}});
  EXPECT_THROW(run_graph_bfdn(graph, 0), CheckError);
}

TEST(GraphExpEdgeTest, TwoNodeGraph) {
  const Graph graph = Graph::from_edges(2, {{0, 1}});
  const GraphExplorationResult result = run_graph_bfdn(graph, 3);
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.all_at_origin);
  EXPECT_EQ(result.rounds, 2);
  EXPECT_EQ(result.tree_edges, 1);
  EXPECT_EQ(result.closed_edges, 0);
}

TEST(GraphExpEdgeTest, MultiEdgePathRoundsExact) {
  // A path graph explored by one robot: exactly 2m rounds.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v < 9; ++v) {
    edges.emplace_back(v, static_cast<NodeId>(v + 1));
  }
  const Graph graph = Graph::from_edges(10, edges);
  const GraphExplorationResult result = run_graph_bfdn(graph, 1);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.rounds, 2 * graph.num_edges());
}

TEST(GraphExpEdgeTest, RoundLimitReportedHonestly) {
  const GridWorld world(10, 10, {});
  const GraphExplorationResult result =
      run_graph_bfdn(world.graph(), 2, /*max_rounds=*/5);
  EXPECT_TRUE(result.hit_round_limit);
  EXPECT_FALSE(result.complete);
}

TEST(GraphExpEdgeTest, ParallelCorridorsCloseExactlyHalf) {
  // 4-cycle from the origin: two length-2 corridors to the far corner;
  // exactly one edge gets closed wherever the robots meet.
  const Graph graph =
      Graph::from_edges(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  for (std::int32_t k : {1, 2, 4}) {
    const GraphExplorationResult result = run_graph_bfdn(graph, k);
    EXPECT_TRUE(result.complete) << "k=" << k;
    EXPECT_EQ(result.tree_edges, 3) << "k=" << k;
    EXPECT_EQ(result.closed_edges, 1) << "k=" << k;
  }
}

TEST(GraphExpEdgeTest, StarGraphAllTreeEdges) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 1; v < 9; ++v) edges.emplace_back(0, v);
  const Graph graph = Graph::from_edges(9, edges);
  const GraphExplorationResult result = run_graph_bfdn(graph, 4);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.closed_edges, 0);
  EXPECT_EQ(result.backtrack_moves, 0);
}

}  // namespace
}  // namespace bfdn
