#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/generators.h"
#include "support/check.h"

namespace bfdn {
namespace {

TEST(GeneratorsTest, Path) {
  const Tree t = make_path(10);
  EXPECT_EQ(t.num_nodes(), 10);
  EXPECT_EQ(t.depth(), 9);
  EXPECT_EQ(t.max_degree(), 2);
}

TEST(GeneratorsTest, Star) {
  const Tree t = make_star(10);
  EXPECT_EQ(t.num_nodes(), 10);
  EXPECT_EQ(t.depth(), 1);
  EXPECT_EQ(t.max_degree(), 9);
}

TEST(GeneratorsTest, CompleteBinary) {
  const Tree t = make_complete_bary(2, 4);
  EXPECT_EQ(t.num_nodes(), 31);  // 2^5 - 1
  EXPECT_EQ(t.depth(), 4);
  EXPECT_EQ(t.max_degree(), 3);
}

TEST(GeneratorsTest, CompleteUnary) {
  const Tree t = make_complete_bary(1, 5);
  EXPECT_EQ(t.num_nodes(), 6);
  EXPECT_EQ(t.depth(), 5);
}

TEST(GeneratorsTest, Spider) {
  const Tree t = make_spider(4, 5);
  EXPECT_EQ(t.num_nodes(), 21);
  EXPECT_EQ(t.depth(), 5);
  EXPECT_EQ(t.max_degree(), 4);  // root has 4 legs
}

TEST(GeneratorsTest, Caterpillar) {
  const Tree t = make_caterpillar(5, 2);
  EXPECT_EQ(t.num_nodes(), 5 + 5 * 2);
  EXPECT_EQ(t.depth(), 5);  // last spine node at depth 4, its legs at 5
}

TEST(GeneratorsTest, Comb) {
  const Tree t = make_comb(4, 3);
  EXPECT_EQ(t.num_nodes(), 4 + 4 * 3);
  EXPECT_EQ(t.depth(), 3 + 3);  // deepest tooth hangs off spine end
}

TEST(GeneratorsTest, Broom) {
  const Tree t = make_broom(6, 8);
  EXPECT_EQ(t.num_nodes(), 15);
  EXPECT_EQ(t.depth(), 7);
  EXPECT_EQ(t.max_degree(), 9);  // bristle hub: 8 bristles + parent
}

TEST(GeneratorsTest, RandomRecursiveDeterministic) {
  Rng r1(5), r2(5);
  const Tree a = make_random_recursive(200, r1);
  const Tree b = make_random_recursive(200, r2);
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.depth(), b.depth());
  for (NodeId v = 0; v < 200; ++v) EXPECT_EQ(a.parent(v), b.parent(v));
}

TEST(GeneratorsTest, RandomRecursiveShallow) {
  Rng rng(5);
  const Tree t = make_random_recursive(2000, rng);
  // Expected depth ~ e*ln(n) ~ 20; assert a loose upper band.
  EXPECT_LT(t.depth(), 60);
}

TEST(GeneratorsTest, BoundedDegreeRespectsCap) {
  Rng rng(6);
  const Tree t = make_random_bounded_degree(500, 3, rng);
  EXPECT_EQ(t.num_nodes(), 500);
  for (NodeId v = 0; v < 500; ++v) EXPECT_LE(t.num_children(v), 3);
}

TEST(GeneratorsTest, TreeWithDepthHitsExactDepth) {
  Rng rng(7);
  for (std::int32_t d : {1, 5, 20}) {
    const Tree t = make_tree_with_depth(100, d, rng);
    EXPECT_EQ(t.num_nodes(), 100);
    EXPECT_EQ(t.depth(), d);
  }
}

TEST(GeneratorsTest, TreeWithDepthRejectsImpossible) {
  Rng rng(7);
  EXPECT_THROW(make_tree_with_depth(3, 5, rng), CheckError);
  EXPECT_THROW(make_tree_with_depth(2, 0, rng), CheckError);
}

TEST(GeneratorsTest, TreeWithDepthSingleton) {
  Rng rng(7);
  const Tree t = make_tree_with_depth(1, 0, rng);
  EXPECT_EQ(t.num_nodes(), 1);
}

TEST(GeneratorsTest, CteHardTreeShape) {
  Rng rng(8);
  const Tree t = make_cte_hard_tree(8, 3, rng);
  // Each phase: complete binary depth 3 (14 new nodes) + 1 continuation.
  EXPECT_EQ(t.num_nodes(), 1 + 3 * 15);
  EXPECT_EQ(t.depth(), 3 * 4);
}

TEST(GeneratorsTest, RandomLeafyExactSize) {
  Rng rng(9);
  const Tree t = make_random_leafy(333, 5, rng);
  EXPECT_EQ(t.num_nodes(), 333);
  for (NodeId v = 0; v < 333; ++v) EXPECT_LE(t.num_children(v), 5);
}

TEST(GeneratorsTest, RemyBinaryIsFullBinary) {
  Rng rng(17);
  for (std::int32_t internal : {0, 1, 5, 50, 300}) {
    Rng child = rng.split();
    const Tree t = make_remy_binary(internal, child);
    EXPECT_EQ(t.num_nodes(), 2 * internal + 1);
    std::int64_t leaves = 0;
    for (NodeId v = 0; v < t.num_nodes(); ++v) {
      const auto c = t.num_children(v);
      EXPECT_TRUE(c == 0 || c == 2) << "node " << v << " has " << c;
      leaves += (c == 0);
    }
    EXPECT_EQ(leaves, internal + 1);
  }
}

TEST(GeneratorsTest, RemyBinaryDepthScalesLikeSqrt) {
  // Expected depth of a uniform binary tree is Theta(sqrt(n)); with
  // n = 2*2000+1 nodes assert a generous [sqrt/4, 8*sqrt] band.
  Rng rng(18);
  const std::int32_t internal = 2000;
  const Tree t = make_remy_binary(internal, rng);
  const double sqrt_n = std::sqrt(2.0 * internal);
  EXPECT_GT(t.depth(), sqrt_n / 4.0);
  EXPECT_LT(t.depth(), 8.0 * sqrt_n);
}

TEST(GeneratorsTest, RemyBinaryDeterministic) {
  Rng a(19), b(19);
  const Tree ta = make_remy_binary(100, a);
  const Tree tb = make_remy_binary(100, b);
  for (NodeId v = 0; v < ta.num_nodes(); ++v) {
    EXPECT_EQ(ta.parent(v), tb.parent(v));
  }
}

TEST(GeneratorsTest, DoubleBroomShape) {
  const Tree t = make_double_broom(5, 7, 9);
  EXPECT_EQ(t.num_nodes(), 1 + 5 + 7 + 9);
  EXPECT_EQ(t.depth(), 8);  // handle end at 7, its bristles at 8
  EXPECT_EQ(t.num_children(0), 6);  // 5 bristles + handle
}

TEST(GeneratorsTest, LopsidedHasExactDepthAndBushes) {
  const Tree t = make_lopsided(40);
  EXPECT_EQ(t.depth(), 40);
  // Strictly more nodes than a bare path: the bushes exist.
  EXPECT_GT(t.num_nodes(), 2 * 40);
}

TEST(GeneratorsTest, LopsidedDegenerate) {
  EXPECT_EQ(make_lopsided(0).num_nodes(), 1);
}

TEST(GeneratorsTest, ZooIsDiverseAndDeterministic) {
  const auto zoo = make_tree_zoo(256, 42);
  EXPECT_GE(zoo.size(), 10u);
  std::set<std::string> names;
  for (const auto& [name, tree] : zoo) {
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
    EXPECT_GE(tree.num_nodes(), 2);
  }
  const auto zoo2 = make_tree_zoo(256, 42);
  for (std::size_t i = 0; i < zoo.size(); ++i) {
    EXPECT_EQ(zoo[i].tree.num_nodes(), zoo2[i].tree.num_nodes());
    EXPECT_EQ(zoo[i].tree.depth(), zoo2[i].tree.depth());
  }
}

}  // namespace
}  // namespace bfdn
