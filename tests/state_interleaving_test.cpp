// Fine-grained interleavings of the ExplorationState reservation
// machinery and the open-frontier bookkeeping — the invariants every
// algorithm silently relies on.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "sim/exploration_state.h"
#include "support/check.h"

namespace bfdn {
namespace {

TEST(StateInterleavingTest, ReserveReleaseReserveCycles) {
  const Tree tree = make_star(4);  // 3 dangling edges at the root
  ExplorationState state(tree, 1);
  const NodeId a = state.reserve_dangling(0);
  const NodeId b = state.reserve_dangling(0);
  EXPECT_NE(a, b);
  EXPECT_EQ(state.num_unreserved_dangling(0), 1);
  EXPECT_EQ(state.num_unexplored_child_edges(0), 3);
  state.release_dangling(0, a);
  EXPECT_EQ(state.num_unreserved_dangling(0), 2);
  // The released edge is reservable again.
  const NodeId c = state.reserve_dangling(0);
  const NodeId d = state.reserve_dangling(0);
  EXPECT_TRUE(c == a || d == a);
  EXPECT_EQ(state.num_unreserved_dangling(0), 0);
}

TEST(StateInterleavingTest, NodeStaysOpenWhileEdgesAreReserved) {
  const Tree tree = make_star(3);
  ExplorationState state(tree, 2);
  (void)state.reserve_dangling(0);
  (void)state.reserve_dangling(0);
  // Fully reserved but not yet explored: the root must still be open
  // (Reanchor's U uses unexplored edges, selected or not).
  EXPECT_FALSE(state.exploration_complete());
  EXPECT_EQ(state.min_open_depth(), 0);
  EXPECT_EQ(state.num_open_nodes(), 1);
}

TEST(StateInterleavingTest, CommitLastEdgeClosesNode) {
  const Tree tree = make_path(3);
  ExplorationState state(tree, 1);
  const NodeId child = state.reserve_dangling(0);
  state.commit_dangling(0, child);
  // Root closed; the frontier moved to the child.
  EXPECT_EQ(state.open_nodes_at_depth(0).size(), 0u);
  EXPECT_EQ(state.min_open_depth(), 1);
}

TEST(StateInterleavingTest, MultiDepthFrontier) {
  // Comb: exploring the spine opens nodes at several depths at once.
  const Tree tree = make_comb(3, 1);
  ExplorationState state(tree, 2);
  // Explore the spine child of the root (spine = 0 -> 2? builder order:
  // tooth first). Walk whatever comes out and check bookkeeping.
  const NodeId first = state.reserve_dangling(0);
  state.commit_dangling(0, first);
  std::int64_t open_total = 0;
  for (std::int32_t d = 0; d <= tree.depth(); ++d) {
    open_total +=
        static_cast<std::int64_t>(state.open_nodes_at_depth(d).size());
  }
  EXPECT_EQ(open_total, state.num_open_nodes());
  EXPECT_FALSE(state.exploration_complete());
}

TEST(StateInterleavingTest, CommitWrongParentRejected) {
  const Tree tree = make_path(4);
  ExplorationState state(tree, 1);
  const NodeId child = state.reserve_dangling(0);
  state.commit_dangling(0, child);
  const NodeId grandchild = state.reserve_dangling(child);
  // Committing the grandchild as if it hung off the root must throw.
  EXPECT_THROW(state.commit_dangling(0, grandchild), CheckError);
}

TEST(StateInterleavingTest, ReleaseWithoutReservationRejected) {
  const Tree tree = make_star(3);
  ExplorationState state(tree, 1);
  EXPECT_THROW(state.release_dangling(0, 1), CheckError);
}

TEST(StateInterleavingTest, DoubleCommitRejected) {
  const Tree tree = make_star(3);
  ExplorationState state(tree, 1);
  const NodeId a = state.reserve_dangling(0);
  state.commit_dangling(0, a);
  (void)state.reserve_dangling(0);
  EXPECT_THROW(state.commit_dangling(0, a), CheckError);
}

TEST(StateInterleavingTest, EdgeEventAccountingAcrossDirections) {
  const Tree tree = make_path(4);
  ExplorationState state(tree, 1);
  EXPECT_EQ(state.edge_events(), 0);
  EXPECT_TRUE(state.record_traversal(1, true));
  EXPECT_TRUE(state.record_traversal(2, true));
  EXPECT_TRUE(state.record_traversal(2, false));
  EXPECT_FALSE(state.record_traversal(2, false));
  EXPECT_EQ(state.edge_events(), 3);
}

}  // namespace
}  // namespace bfdn
