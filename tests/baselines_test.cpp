// Tests for the baseline algorithms and the Appendix-A guarantee map.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/bfs_levels.h"
#include "baselines/brass.h"
#include "baselines/cte.h"
#include "baselines/depth_next_only.h"
#include "baselines/guarantees.h"
#include "baselines/offline.h"
#include "core/bfdn.h"
#include "graph/generators.h"
#include "sim/engine.h"

namespace bfdn {
namespace {

TEST(CteTest, ExploresAndReturnsOnZoo) {
  for (const auto& [name, tree] : make_tree_zoo(200, 404)) {
    for (std::int32_t k : {1, 2, 8, 32}) {
      CteAlgorithm algo(tree, k);
      RunConfig config;
      config.num_robots = k;
      const RunResult result = run_exploration(tree, algo, config);
      EXPECT_TRUE(result.complete) << name << " k=" << k;
      EXPECT_TRUE(result.all_at_root) << name << " k=" << k;
    }
  }
}

TEST(CteTest, BalancedSplitOnCompleteBinaryIsFast) {
  const Tree tree = make_complete_bary(2, 8);  // 511 nodes
  CteAlgorithm algo(tree, 64);
  RunConfig config;
  config.num_robots = 64;
  const RunResult result = run_exploration(tree, algo, config);
  EXPECT_TRUE(result.complete);
  // CTE thrives here; should be far below single-robot DFS cost.
  EXPECT_LT(result.rounds, tree.num_nodes());
}

TEST(CteTest, GroupTraversalActuallyHappens) {
  // On a path, all k robots march together down the single dangling
  // edge each round (group moves), then come back.
  const Tree tree = make_path(12);
  CteAlgorithm algo(tree, 4);
  RunConfig config;
  config.num_robots = 4;
  std::vector<TraceFrame> trace;
  config.trace = &trace;
  const RunResult result = run_exploration(tree, algo, config);
  EXPECT_TRUE(result.complete);
  ASSERT_FALSE(trace.empty());
  // In the first round every robot stepped onto node 1 together.
  for (NodeId pos : trace.front().positions) EXPECT_EQ(pos, 1);
}

TEST(CteTest, DeepGadgetTreeFavoursCteMeasured) {
  // Figure 1's deep region: on a deep skinny gadget stack (n ~ k*D,
  // D large) BFDN pays its D^2 log k overhead while CTE pays only +D.
  // Measured rounds must reflect that ordering.
  Rng rng(11);
  const std::int32_t k = 16;
  const Tree tree = make_cte_hard_tree(k, 40, rng);  // D = 200, n = 1241
  CteAlgorithm cte(tree, k);
  BfdnAlgorithm bfdn_algo(k);
  RunConfig config;
  config.num_robots = k;
  const RunResult cte_result = run_exploration(tree, cte, config);
  const RunResult bfdn_result = run_exploration(tree, bfdn_algo, config);
  ASSERT_TRUE(cte_result.complete);
  ASSERT_TRUE(bfdn_result.complete);
  EXPECT_LT(cte_result.rounds, bfdn_result.rounds);
}

TEST(CteTest, ShallowBushyTreesKeepBfdnCompetitive) {
  // Figure 1's shallow region: with D^2 log k << n/k both algorithms sit
  // near the 2n/k offline cost; BFDN must stay within a small factor of
  // CTE there.
  Rng rng(12);
  const std::int32_t k = 16;
  const Tree tree = make_tree_with_depth(6000, 8, rng);
  CteAlgorithm cte(tree, k);
  BfdnAlgorithm bfdn_algo(k);
  RunConfig config;
  config.num_robots = k;
  const RunResult cte_result = run_exploration(tree, cte, config);
  const RunResult bfdn_result = run_exploration(tree, bfdn_algo, config);
  ASSERT_TRUE(cte_result.complete);
  ASSERT_TRUE(bfdn_result.complete);
  EXPECT_LE(bfdn_result.rounds, 2 * cte_result.rounds);
}

TEST(OfflineTest, SplitCostWithinTwiceOptimalPlusSlack) {
  for (const auto& [name, tree] : make_tree_zoo(250, 17)) {
    for (std::int32_t k : {1, 2, 8, 32}) {
      const OfflineSplitPlan plan = offline_dfs_split(tree, k);
      const double guarantee =
          2.0 * (static_cast<double>(tree.num_nodes()) / k + tree.depth()) +
          2.0;  // ceil slack
      EXPECT_LE(static_cast<double>(plan.rounds), guarantee)
          << name << " k=" << k;
      EXPECT_GE(static_cast<double>(plan.rounds),
                offline_lower_bound(tree.num_nodes(), tree.depth(), k) /
                    2.0)
          << name << " k=" << k;
    }
  }
}

TEST(OfflineTest, SingleRobotSplitIsExactDfs) {
  const Tree tree = make_comb(7, 4);
  const OfflineSplitPlan plan = offline_dfs_split(tree, 1);
  EXPECT_EQ(plan.rounds, 2 * (tree.num_nodes() - 1));
}

TEST(OfflineTest, SegmentsCoverTourExactly) {
  const Tree tree = make_complete_bary(3, 3);
  const OfflineSplitPlan plan = offline_dfs_split(tree, 5);
  std::int64_t total = 0;
  for (auto len : plan.segment_lengths) total += len;
  EXPECT_EQ(total, 2 * (tree.num_nodes() - 1));
}

TEST(OfflineTest, SingleNodeTree) {
  const OfflineSplitPlan plan = offline_dfs_split(make_path(1), 4);
  EXPECT_EQ(plan.rounds, 0);
}

TEST(OfflineTest, MoreRobotsNeverHurt) {
  Rng rng(8);
  const Tree tree = make_random_leafy(400, 4, rng);
  std::int64_t prev = offline_dfs_split(tree, 1).rounds;
  for (std::int32_t k : {2, 4, 8, 16}) {
    const std::int64_t cur = offline_dfs_split(tree, k).rounds;
    EXPECT_LE(cur, prev) << "k=" << k;
    prev = cur;
  }
}

TEST(GuaranteesTest, FormulasMatchClosedForms) {
  EXPECT_NEAR(guarantee_cte(1000, 10, std::exp(1.0)), 1010.0, 1e-6);
  EXPECT_NEAR(guarantee_bfdn(1000, 10, std::exp(1.0)),
              2000.0 / std::exp(1.0) + 100.0 * 4.0, 1e-6);
  // ell = 1 reduces to 4n/k + 4 (2 + log k) D^2.
  EXPECT_NEAR(guarantee_bfdn_ell(1000, 10, 16, 1),
              4000.0 / 16 + 4.0 * (2.0 + std::log(16.0)) * 100.0, 1e-6);
}

TEST(GuaranteesTest, Fig1ShallowBushyFavoursBfdn) {
  // Huge n, tiny D: BFDN's 2n/k term wins over CTE's n/log k.
  EXPECT_EQ(fig1_winner(1e9, 5, 64, 4), "BFDN");
}

TEST(GuaranteesTest, Fig1DeepTreesFavourCte) {
  // D close to n: the D^2 overhead kills BFDN; CTE's n/log k + D wins.
  EXPECT_EQ(fig1_winner(1e6, 5e5, 64, 4), "CTE");
}

TEST(GuaranteesTest, Fig1IntermediateDepthFavoursRecursive) {
  // Between the shallow (BFDN) and deep (CTE) regimes the recursive
  // variant takes over — visible once k^{1/ell} clearly beats log k.
  EXPECT_EQ(fig1_winner(1e9, 6e3, 4096, 4), "BFDN_l");
}

TEST(GuaranteesTest, BestEllGrowsWithDepth) {
  const std::int32_t shallow = best_ell(1e8, 10, 64, 6);
  const std::int32_t deep = best_ell(1e8, 1e4, 64, 6);
  EXPECT_LE(shallow, deep);
}

TEST(GuaranteesTest, PairwiseRulesConsistentWithFormulas) {
  // Where the closed-form rule says BFDN beats CTE decisively, the
  // evaluated formulas must agree (sample points well inside regions).
  EXPECT_TRUE(bfdn_beats_cte_rule(1e8, 10, 64));
  EXPECT_LT(guarantee_bfdn(1e8, 10, 64), guarantee_cte(1e8, 10, 64));
  EXPECT_FALSE(bfdn_beats_cte_rule(1e4, 1e3, 64));
  EXPECT_GT(guarantee_bfdn(1e4, 1e3, 64), guarantee_cte(1e4, 1e3, 64));
}

TEST(BfsLevelsTest, ExploresAndReturnsOnZoo) {
  for (const auto& [name, tree] : make_tree_zoo(150, 808)) {
    for (std::int32_t k : {1, 3, 16}) {
      BfsLevelsAlgorithm algo(k);
      RunConfig config;
      config.num_robots = k;
      const RunResult result = run_exploration(tree, algo, config);
      EXPECT_TRUE(result.complete) << name << " k=" << k;
      EXPECT_TRUE(result.all_at_root) << name << " k=" << k;
    }
  }
}

TEST(BfsLevelsTest, TracksItsCostModel) {
  // rounds <= 3 * (D^2 + nD/k) across the zoo (empirical constant).
  for (const auto& [name, tree] : make_tree_zoo(250, 809)) {
    for (std::int32_t k : {2, 8, 64}) {
      BfsLevelsAlgorithm algo(k);
      RunConfig config;
      config.num_robots = k;
      const RunResult result = run_exploration(tree, algo, config);
      ASSERT_TRUE(result.complete) << name;
      EXPECT_LE(static_cast<double>(result.rounds),
                3.0 * bfs_levels_cost_model(tree.num_nodes(),
                                            tree.depth(), k))
          << name << " k=" << k;
    }
  }
}

TEST(BfsLevelsTest, ManyRobotsRegimeIsDepthSquared) {
  // The open-directions regime: k = n makes the n*D/k term equal D, so
  // rounds must be O(D^2) with a small constant.
  for (const std::int32_t half : {8, 16, 32}) {
    const Tree tree = make_comb(half, half);
    const auto k = static_cast<std::int32_t>(tree.num_nodes());
    BfsLevelsAlgorithm algo(k);
    RunConfig config;
    config.num_robots = k;
    const RunResult result = run_exploration(tree, algo, config);
    ASSERT_TRUE(result.complete);
    const double d2 =
        static_cast<double>(tree.depth()) * tree.depth();
    EXPECT_LE(static_cast<double>(result.rounds), 3.0 * d2)
        << "D=" << tree.depth();
  }
}

TEST(BfsLevelsTest, OneDiscoveryPerTripMakesItSlowerThanBfdnAtSmallK) {
  Rng rng(55);
  const Tree tree = make_tree_with_depth(2000, 12, rng);
  const std::int32_t k = 4;
  RunConfig config;
  config.num_robots = k;
  BfsLevelsAlgorithm waves(k);
  BfdnAlgorithm bfdn_algo(k);
  const RunResult wave_result = run_exploration(tree, waves, config);
  const RunResult bfdn_result = run_exploration(tree, bfdn_algo, config);
  ASSERT_TRUE(wave_result.complete);
  ASSERT_TRUE(bfdn_result.complete);
  EXPECT_GT(wave_result.rounds, bfdn_result.rounds);
}

TEST(BrassTest, ExploresAndReturnsOnZoo) {
  for (const auto& [name, tree] : make_tree_zoo(180, 606)) {
    for (std::int32_t k : {1, 4, 16}) {
      BrassAlgorithm algo(k);
      RunConfig config;
      config.num_robots = k;
      const RunResult result = run_exploration(tree, algo, config);
      EXPECT_TRUE(result.complete) << name << " k=" << k;
      EXPECT_TRUE(result.all_at_root) << name << " k=" << k;
      EXPECT_FALSE(result.hit_round_limit) << name << " k=" << k;
    }
  }
}

TEST(BrassTest, SingleRobotIsPlainDfs) {
  const Tree tree = make_comb(8, 5);
  BrassAlgorithm algo(1);
  RunConfig config;
  config.num_robots = 1;
  const RunResult result = run_exploration(tree, algo, config);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.rounds, 2 * (tree.num_nodes() - 1));
}

TEST(BrassTest, BehavesLikeCteNotLikeItsOwnBound) {
  // [1] is "a novel analysis of CTE": measured rounds should sit within
  // a small factor of CTE, nowhere near the (D+k)^k additive term.
  Rng rng(33);
  const Tree tree = make_tree_with_depth(3000, 25, rng);
  const std::int32_t k = 16;
  RunConfig config;
  config.num_robots = k;
  BrassAlgorithm brass(k);
  CteAlgorithm cte(tree, k);
  const RunResult r_brass = run_exploration(tree, brass, config);
  const RunResult r_cte = run_exploration(tree, cte, config);
  ASSERT_TRUE(r_brass.complete);
  ASSERT_TRUE(r_cte.complete);
  EXPECT_LE(r_brass.rounds, 3 * r_cte.rounds);
}

TEST(DnSwarmTest, ClumpsOnCombsWorseThanBfdn) {
  const Tree tree = make_comb(60, 60);
  const std::int32_t k = 16;
  DepthNextOnlyAlgorithm dn(k);
  BfdnAlgorithm bfdn_algo(k);
  RunConfig config;
  config.num_robots = k;
  const RunResult dn_result = run_exploration(tree, dn, config);
  const RunResult bfdn_result = run_exploration(tree, bfdn_algo, config);
  ASSERT_TRUE(dn_result.complete);
  ASSERT_TRUE(bfdn_result.complete);
  EXPECT_LT(bfdn_result.rounds, dn_result.rounds);
}

}  // namespace
}  // namespace bfdn
