// Tests of the per-depth completion timeline, including the behavioural
// signature it exposes: BFDN closes strata roughly in order (its
// breadth-first re-anchoring), while a DN swarm's deep levels finish
// long before shallow stragglers on adversarial shapes.
#include <gtest/gtest.h>

#include "baselines/depth_next_only.h"
#include "core/bfdn.h"
#include "graph/generators.h"
#include "sim/engine.h"

namespace bfdn {
namespace {

RunResult run_algo(const Tree& tree, Algorithm& algo, std::int32_t k) {
  RunConfig config;
  config.num_robots = k;
  return run_exploration(tree, algo, config);
}

TEST(TimelineTest, CompleteRunFillsEveryDepth) {
  for (const auto& [name, tree] : make_tree_zoo(200, 7070)) {
    BfdnAlgorithm algo(8);
    const RunResult result = run_algo(tree, algo, 8);
    ASSERT_TRUE(result.complete) << name;
    ASSERT_EQ(static_cast<std::int32_t>(
                  result.depth_completed_round.size()),
              tree.depth() + 1)
        << name;
    EXPECT_EQ(result.depth_completed_round[0], 0) << name;
    for (std::size_t d = 0; d < result.depth_completed_round.size();
         ++d) {
      EXPECT_GE(result.depth_completed_round[d], 0)
          << name << " depth " << d;
      EXPECT_LE(result.depth_completed_round[d], result.rounds)
          << name << " depth " << d;
    }
  }
}

TEST(TimelineTest, DepthDRequiresAtLeastDRounds) {
  // Physics: a node at depth d cannot be reached before round d.
  Rng rng(808);
  const Tree tree = make_tree_with_depth(400, 20, rng);
  BfdnAlgorithm algo(16);
  const RunResult result = run_algo(tree, algo, 16);
  ASSERT_TRUE(result.complete);
  for (std::size_t d = 1; d < result.depth_completed_round.size(); ++d) {
    EXPECT_GE(result.depth_completed_round[d],
              static_cast<std::int64_t>(d));
  }
}

TEST(TimelineTest, IncompleteRunLeavesMinusOnes) {
  const Tree tree = make_path(100);
  DepthNextOnlyAlgorithm algo(1);
  RunConfig config;
  config.num_robots = 1;
  config.max_rounds = 10;
  const RunResult result = run_exploration(tree, algo, config);
  ASSERT_FALSE(result.complete);
  EXPECT_EQ(result.depth_completed_round[5], 5);    // reached
  EXPECT_EQ(result.depth_completed_round[50], -1);  // never reached
}

TEST(TimelineTest, BfdnClosesStrataMostlyInOrder) {
  // On a bushy fixed-depth tree, BFDN's working depth only moves down,
  // so the completion rounds are non-decreasing in depth (ties aside).
  Rng rng(909);
  const Tree tree = make_tree_with_depth(1500, 10, rng);
  BfdnAlgorithm algo(12);
  const RunResult result = run_algo(tree, algo, 12);
  ASSERT_TRUE(result.complete);
  for (std::size_t d = 2; d < result.depth_completed_round.size(); ++d) {
    EXPECT_GE(result.depth_completed_round[d],
              result.depth_completed_round[d - 1])
        << "depth " << d;
  }
}

TEST(TimelineTest, SingleNodeTreeTimeline) {
  const Tree tree = make_path(1);
  BfdnAlgorithm algo(3);
  const RunResult result = run_algo(tree, algo, 3);
  ASSERT_EQ(result.depth_completed_round.size(), 1u);
  EXPECT_EQ(result.depth_completed_round[0], 0);
}

}  // namespace
}  // namespace bfdn
