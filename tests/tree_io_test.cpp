// Tests for the plain-text tree format.
#include <gtest/gtest.h>

#include <cstdio>

#include "graph/generators.h"
#include "graph/tree_io.h"
#include "support/check.h"

namespace bfdn {
namespace {

TEST(TreeIoTest, RoundTripPreservesStructure) {
  Rng rng(77);
  for (const auto& [name, tree] : make_tree_zoo(120, 3)) {
    const Tree copy = parse_tree(tree_to_text(tree));
    ASSERT_EQ(copy.num_nodes(), tree.num_nodes()) << name;
    for (NodeId v = 0; v < tree.num_nodes(); ++v) {
      EXPECT_EQ(copy.parent(v), tree.parent(v)) << name;
    }
    EXPECT_EQ(copy.depth(), tree.depth()) << name;
    EXPECT_EQ(copy.max_degree(), tree.max_degree()) << name;
  }
}

TEST(TreeIoTest, SingleNode) {
  const Tree copy = parse_tree(tree_to_text(make_path(1)));
  EXPECT_EQ(copy.num_nodes(), 1);
}

TEST(TreeIoTest, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "bfdn-tree v1\n# comment\n\n-1\n# another\n0\n0\n";
  const Tree tree = parse_tree(text);
  EXPECT_EQ(tree.num_nodes(), 3);
  EXPECT_EQ(tree.parent(2), 0);
}

TEST(TreeIoTest, CrLfTolerated) {
  const Tree tree = parse_tree("bfdn-tree v1\r\n-1\r\n0\r\n");
  EXPECT_EQ(tree.num_nodes(), 2);
}

TEST(TreeIoTest, RejectsMissingOrWrongHeader) {
  EXPECT_THROW(parse_tree("-1\n0\n"), CheckError);
  EXPECT_THROW(parse_tree("bfdn-tree v2\n-1\n"), CheckError);
  EXPECT_THROW(parse_tree(""), CheckError);
}

TEST(TreeIoTest, RejectsJunkLines) {
  EXPECT_THROW(parse_tree("bfdn-tree v1\n-1\nzero\n"), CheckError);
  EXPECT_THROW(parse_tree("bfdn-tree v1\n-1\n0 extra\n"), CheckError);
}

TEST(TreeIoTest, RejectsStructurallyInvalidTrees) {
  // Cycle between nodes 1 and 2.
  EXPECT_THROW(parse_tree("bfdn-tree v1\n-1\n2\n1\n"), CheckError);
}

TEST(TreeIoTest, FileRoundTrip) {
  Rng rng(9);
  const Tree tree = make_random_leafy(64, 4, rng);
  const std::string path = ::testing::TempDir() + "bfdn_tree_io_test.txt";
  save_tree(tree, path);
  const Tree copy = load_tree(path);
  EXPECT_EQ(copy.num_nodes(), tree.num_nodes());
  for (NodeId v = 0; v < tree.num_nodes(); ++v) {
    EXPECT_EQ(copy.parent(v), tree.parent(v));
  }
  std::remove(path.c_str());
}

TEST(TreeIoTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_tree("/nonexistent/dir/tree.txt"), CheckError);
}

}  // namespace
}  // namespace bfdn
