// Regression tests for the lint engine itself (src/lint): each fixture
// tree under tests/fixtures/lint holds one violation class, and the
// tests assert the exact findings — file, line, and rule — so the
// linter cannot silently stop catching a class (or start flagging clean
// code) without a test going red. docs/LINT.md describes the rules.
#include "lint/lint.h"

#include <algorithm>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "support/check.h"

namespace bfdn {
namespace lint {
namespace {

std::string fixture_root(const std::string& name) {
  return std::string(BFDN_LINT_FIXTURES) + "/" + name;
}

Config fixture_config(const std::string& name) {
  return load_config(fixture_root(name) + "/lint_rules.json");
}

Report lint_fixture(const std::string& name) {
  return run_lint(fixture_root(name), fixture_config(name));
}

TEST(LintFixtures, GoodTreeIsCleanAndCountsSuppressions) {
  const Report report = lint_fixture("good");
  EXPECT_TRUE(report.clean()) << format_report(report);
  EXPECT_EQ(report.files_scanned, 2);
  ASSERT_EQ(report.suppressions.size(), 1u);
  EXPECT_EQ(report.suppressions[0].check, "raw-rand");
  EXPECT_EQ(report.suppressions[0].file, "src/graph/tree.h");
  EXPECT_FALSE(report.suppressions[0].reason.empty());
}

TEST(LintFixtures, LayeringBackEdgeIsExact) {
  const Report report = lint_fixture("layering");
  ASSERT_EQ(report.findings.size(), 1u) << format_report(report);
  const Finding& finding = report.findings[0];
  EXPECT_EQ(finding.file, "src/support/bad.h");
  EXPECT_EQ(finding.line, 3);
  EXPECT_EQ(finding.rule, "layering");
  EXPECT_NE(finding.message.find("back-edge"), std::string::npos);
}

TEST(LintFixtures, BannedCallsAndMalformedNolint) {
  const Report report = lint_fixture("banned");
  ASSERT_EQ(report.findings.size(), 3u) << format_report(report);
  // Findings are sorted by (file, line, rule).
  EXPECT_EQ(report.findings[0].file, "src/graph/badnolint.h");
  EXPECT_EQ(report.findings[0].line, 3);
  EXPECT_EQ(report.findings[0].rule, "nolint-format");

  EXPECT_EQ(report.findings[1].file, "src/graph/clockuser.cpp");
  EXPECT_EQ(report.findings[1].line, 5);
  EXPECT_EQ(report.findings[1].rule, "wall-clock-type");

  EXPECT_EQ(report.findings[2].file, "src/graph/clockuser.cpp");
  EXPECT_EQ(report.findings[2].line, 9);
  EXPECT_EQ(report.findings[2].rule, "raw-rand");
}

TEST(LintFixtures, UnorderedIterationOnlyInHashedPaths) {
  const Report report = lint_fixture("unordered");
  ASSERT_EQ(report.findings.size(), 2u) << format_report(report);
  // The member is declared in engine.h; both iterations live in the
  // sibling engine.cpp (header-harvest must connect them). The
  // identical pattern in src/graph (not a hashed path) stays legal.
  EXPECT_EQ(report.findings[0].file, "src/sim/engine.cpp");
  EXPECT_EQ(report.findings[0].line, 10);
  EXPECT_EQ(report.findings[0].rule, "unordered-iteration");
  EXPECT_NE(report.findings[0].message.find("range-for"),
            std::string::npos);

  EXPECT_EQ(report.findings[1].file, "src/sim/engine.cpp");
  EXPECT_EQ(report.findings[1].line, 17);
  EXPECT_EQ(report.findings[1].rule, "unordered-iteration");
  EXPECT_NE(report.findings[1].message.find("iterator walk"),
            std::string::npos);
}

TEST(LintFixtures, TraceStructChangeWithoutBumpIsFlagged) {
  // The fixture baseline records a stale fingerprint at the current
  // version: exactly the "edited the struct, forgot the bump" state.
  const Report report = lint_fixture("traceversion");
  ASSERT_EQ(report.findings.size(), 1u) << format_report(report);
  EXPECT_EQ(report.findings[0].rule, "trace-version");
  EXPECT_NE(report.findings[0].message.find("without a trace-format"),
            std::string::npos);
}

TEST(LintFixtures, TraceBaselineRefreshMakesItClean) {
  Config config = fixture_config("traceversion");
  const std::string root = fixture_root("traceversion");
  EXPECT_EQ(compute_trace_version(root, config), "BFDNTRC1:v1");
  config.trace.fingerprint = compute_trace_fingerprint(root, config);
  const Report report = run_lint(root, config);
  EXPECT_TRUE(report.clean()) << format_report(report);
}

TEST(LintFixtures, TraceVersionMismatchAsksForBaselineRefresh) {
  Config config = fixture_config("traceversion");
  config.trace.version = "BFDNTRC1:v2";  // as if rules lag the bump
  config.trace.fingerprint =
      compute_trace_fingerprint(fixture_root("traceversion"), config);
  const Report report = run_lint(fixture_root("traceversion"), config);
  ASSERT_EQ(report.findings.size(), 1u) << format_report(report);
  EXPECT_EQ(report.findings[0].rule, "trace-version");
  EXPECT_NE(report.findings[0].message.find("--write-trace-baseline"),
            std::string::npos);
}

TEST(LintFixtures, LockDisciplineFamilyFindsAllFourClasses) {
  const Report report = lint_fixture("locks");
  ASSERT_EQ(report.findings.size(), 4u) << format_report(report);
  // Findings are sorted by (file, line, rule).
  EXPECT_EQ(report.findings[0].file, "src/svc/naked.h");
  EXPECT_EQ(report.findings[0].line, 10);
  EXPECT_EQ(report.findings[0].rule, "lock-annotation");
  EXPECT_NE(report.findings[0].message.find("'Naked::mutex_'"),
            std::string::npos);

  EXPECT_EQ(report.findings[1].file, "src/svc/notifier.cpp");
  EXPECT_EQ(report.findings[1].line, 8);
  EXPECT_EQ(report.findings[1].rule, "cv-notify-unlocked");
  EXPECT_NE(report.findings[1].message.find("'Notifier::m_'"),
            std::string::npos);

  EXPECT_EQ(report.findings[2].file, "src/svc/notifier.cpp");
  EXPECT_EQ(report.findings[2].line, 13);
  EXPECT_EQ(report.findings[2].rule, "cv-wait-no-predicate");

  // The cycle is anchored at its smallest edge site and cites both
  // acquisition sites, so the report alone locates the deadlock.
  EXPECT_EQ(report.findings[3].file, "src/svc/order_ab.cpp");
  EXPECT_EQ(report.findings[3].line, 5);
  EXPECT_EQ(report.findings[3].rule, "lock-order");
  EXPECT_NE(report.findings[3].message.find("src/svc/order_ab.cpp:5"),
            std::string::npos);
  EXPECT_NE(report.findings[3].message.find("src/svc/order_ba.cpp:5"),
            std::string::npos);

  // The NOLINT(locks) member is suppressed, not silently legal: it
  // shows up in the suppression tally with its reason.
  ASSERT_EQ(report.suppressions.size(), 1u);
  EXPECT_EQ(report.suppressions[0].check, "locks");
  EXPECT_EQ(report.suppressions[0].file, "src/svc/suppressed.h");
  EXPECT_EQ(report.suppressions[0].line, 10);
  EXPECT_FALSE(report.suppressions[0].reason.empty());
}

TEST(LintFixtures, RawStringContentsAreStrippedAsLiterals) {
  // kShellSnippet and kDoc spell rand()/srand() inside raw string
  // literals (one multi-line); only the real call may fire, and at the
  // exact line — the multi-line literal must not shift line numbers.
  const Report report = lint_fixture("rawstring");
  ASSERT_EQ(report.findings.size(), 1u) << format_report(report);
  EXPECT_EQ(report.findings[0].file, "src/graph/rawuser.cpp");
  EXPECT_EQ(report.findings[0].line, 13);
  EXPECT_EQ(report.findings[0].rule, "raw-rand");
}

TEST(LintConfig, LocksConfigDefaultsAndRoundTrip) {
  const Config config = fixture_config("locks");
  ASSERT_TRUE(config.locks.enabled);
  // An empty "locks" object enables the family with the std +
  // thread_annotations.h vocabulary.
  EXPECT_NE(std::find(config.locks.mutex_types.begin(),
                      config.locks.mutex_types.end(), "Mutex"),
            config.locks.mutex_types.end());
  EXPECT_NE(std::find(config.locks.lock_types.begin(),
                      config.locks.lock_types.end(), "MutexLock"),
            config.locks.lock_types.end());

  const std::string path =
      ::testing::TempDir() + "/lint_rules_locks_roundtrip.json";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << config_to_json(config);
  }
  const Config reloaded = load_config(path);
  EXPECT_TRUE(reloaded.locks.enabled);
  EXPECT_EQ(config_to_json(reloaded), config_to_json(config));
}

TEST(LintConfig, CanonicalJsonRoundTrips) {
  const Config config = fixture_config("banned");
  const std::string path =
      ::testing::TempDir() + "/lint_rules_roundtrip.json";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << config_to_json(config);
  }
  const Config reloaded = load_config(path);
  EXPECT_EQ(config_to_json(reloaded), config_to_json(config));
  // Same behaviour, not just same bytes.
  const Report a = run_lint(fixture_root("banned"), config);
  const Report b = run_lint(fixture_root("banned"), reloaded);
  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].rule, b.findings[i].rule);
    EXPECT_EQ(a.findings[i].line, b.findings[i].line);
  }
}

TEST(LintConfig, MalformedRulesFileThrows) {
  const std::string path = ::testing::TempDir() + "/broken_rules.json";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "{ not json";
  }
  EXPECT_THROW(load_config(path), CheckError);
}

}  // namespace
}  // namespace lint
}  // namespace bfdn
