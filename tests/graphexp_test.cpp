// Tests for BFDN on non-tree graphs (Section 4.3, Proposition 9):
// cycles, cliques, grids with rectangular obstacles.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/grid_world.h"
#include "graphexp/graph_bfdn.h"
#include "sim/engine.h"

namespace bfdn {
namespace {

Graph make_cycle(std::int32_t n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v < n; ++v) {
    edges.emplace_back(v, static_cast<NodeId>((v + 1) % n));
  }
  return Graph::from_edges(n, edges);
}

Graph make_clique(std::int32_t n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = static_cast<NodeId>(a + 1); b < n; ++b) {
      edges.emplace_back(a, b);
    }
  }
  return Graph::from_edges(n, edges);
}

void expect_explored_within_bound(const Graph& graph, std::int32_t k,
                                  const std::string& label) {
  const GraphExplorationResult result = run_graph_bfdn(graph, k);
  EXPECT_TRUE(result.complete) << label;
  EXPECT_TRUE(result.all_at_origin) << label;
  EXPECT_FALSE(result.hit_round_limit) << label;
  const double bound = proposition9_bound(graph.num_edges(), graph.radius(),
                                          graph.max_degree(), k);
  EXPECT_LE(static_cast<double>(result.rounds), bound) << label;
  // BFS-tree structure: exactly n-1 never-closed edges, rest closed.
  EXPECT_EQ(result.tree_edges, graph.num_nodes() - 1) << label;
  EXPECT_EQ(result.closed_edges,
            graph.num_edges() - (graph.num_nodes() - 1))
      << label;
}

TEST(GraphBfdnTest, TreeShapedGraphMatchesTreeBehaviour) {
  // A tree given as a graph: no edge is ever closed.
  const Tree tree = make_comb(6, 4);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 1; v < tree.num_nodes(); ++v) {
    edges.emplace_back(tree.parent(v), v);
  }
  const Graph graph =
      Graph::from_edges(tree.num_nodes(), edges);
  for (std::int32_t k : {1, 3, 9}) {
    expect_explored_within_bound(graph, k, "tree-as-graph");
  }
}

TEST(GraphBfdnTest, EvenCycle) {
  for (std::int32_t k : {1, 2, 4}) {
    expect_explored_within_bound(make_cycle(16), k, "cycle16");
  }
}

TEST(GraphBfdnTest, OddCycle) {
  expect_explored_within_bound(make_cycle(17), 3, "cycle17");
}

TEST(GraphBfdnTest, TriangleSmallestCycle) {
  expect_explored_within_bound(make_cycle(3), 2, "triangle");
}

TEST(GraphBfdnTest, Clique) {
  for (std::int32_t k : {1, 4, 12}) {
    expect_explored_within_bound(make_clique(9), k, "clique9");
  }
}

TEST(GraphBfdnTest, OpenGrid) {
  const GridWorld world(8, 8, {});
  for (std::int32_t k : {1, 4, 16}) {
    expect_explored_within_bound(world.graph(), k, "grid8x8");
  }
}

TEST(GraphBfdnTest, GridWithRectangularObstacles) {
  Rng rng(7);
  for (int rep = 0; rep < 4; ++rep) {
    Rng child = rng.split();
    const GridWorld world = GridWorld::random(16, 12, 6, 4, child);
    expect_explored_within_bound(world.graph(), 8,
                                 "random-grid rep" + std::to_string(rep));
  }
}

TEST(GraphBfdnTest, ManhattanAssumptionCaseFromThePaper) {
  // Obstacles placed away from both axes keep BFS distance == i + j,
  // the closed-form case cited from Ortolf-Schindelhauer [12].
  const GridWorld world(10, 10, {Rect{2, 3, 4, 4}, Rect{6, 6, 7, 8}});
  ASSERT_TRUE(world.distances_are_manhattan());
  expect_explored_within_bound(world.graph(), 6, "manhattan-grid");
}

TEST(GraphBfdnTest, DetourGridStillExplored) {
  // A wall touching the x-axis breaks the Manhattan property; the
  // algorithm only needs the true-distance oracle.
  const GridWorld world(10, 6, {Rect{4, 0, 4, 4}});
  ASSERT_FALSE(world.distances_are_manhattan());
  expect_explored_within_bound(world.graph(), 4, "detour-grid");
}

TEST(GraphBfdnTest, ClosedEdgesTraversedAtMostTwice) {
  const GraphExplorationResult result = run_graph_bfdn(make_clique(7), 5);
  ASSERT_TRUE(result.complete);
  // Every close costs exactly one backtrack move.
  EXPECT_EQ(result.backtrack_moves, result.closed_edges);
}

TEST(GraphBfdnTest, SingleNodeGraph) {
  const Graph graph = Graph::from_edges(1, {});
  const GraphExplorationResult result = run_graph_bfdn(graph, 3);
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.all_at_origin);
  EXPECT_EQ(result.rounds, 0);
}

TEST(GraphBfdnTest, RoomsWorldExplored) {
  Rng rng(21);
  const GridWorld world = make_rooms_world(4, 3, 4, rng);
  // All rooms reachable through their doors.
  EXPECT_EQ(world.num_reachable_cells(),
            world.graph().num_nodes());
  EXPECT_GE(world.num_reachable_cells(), 4 * 3 * 4 * 4);
  expect_explored_within_bound(world.graph(), 6, "rooms-world");
}

TEST(GraphBfdnTest, SerpentineIsASingleCorridor) {
  const GridWorld world = make_serpentine_world(8, 4);
  // Snake: radius close to the number of corridor cells.
  EXPECT_GE(world.graph().radius(),
            static_cast<std::int32_t>(world.num_reachable_cells() / 2));
  expect_explored_within_bound(world.graph(), 3, "serpentine");
}

TEST(GridWorldBuilderTest, SerpentineDeterministicShape) {
  const GridWorld world = make_serpentine_world(5, 3);
  EXPECT_EQ(world.width(), 5);
  EXPECT_EQ(world.height(), 5);
  // Corridor rows fully free.
  for (std::int32_t x = 0; x < 5; ++x) {
    EXPECT_FALSE(world.blocked(x, 0));
    EXPECT_FALSE(world.blocked(x, 2));
    EXPECT_FALSE(world.blocked(x, 4));
  }
  // First wall has its gap at the right end.
  EXPECT_TRUE(world.blocked(0, 1));
  EXPECT_FALSE(world.blocked(4, 1));
}

TEST(GraphBfdnTest, LemmaStyleReanchorsBoundedPerLevel) {
  const GridWorld world(12, 12, {Rect{3, 3, 5, 5}});
  const std::int32_t k = 9;
  const GraphExplorationResult result = run_graph_bfdn(world.graph(), k);
  ASSERT_TRUE(result.complete);
  const double per_level = lemma2_bound(k, world.graph().max_degree());
  for (const auto& [depth, count] : result.reanchors_by_depth.buckets()) {
    if (depth == 0) continue;
    EXPECT_LE(static_cast<double>(count), per_level) << "depth " << depth;
  }
}

}  // namespace
}  // namespace bfdn
