// Differential-oracle and fuzzer tests.
//
// The oracle must (a) pass on healthy instances across the tree zoo,
// with and without break-down schedules, and (b) catch the injected
// Reanchor load-counter off-by-one (BfdnOptions::fault_load_leak) and
// shrink it to a minimal counterexample — the ISSUE acceptance demo.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "support/check.h"
#include "verify/fuzz.h"
#include "verify/oracle.h"
#include "verify/shrink.h"

namespace bfdn {
namespace {

TEST(OracleTest, PassesOnTreeZoo) {
  for (const NamedTree& named : make_tree_zoo(120, 7)) {
    for (const std::int32_t k : {1, 4, 8}) {
      SCOPED_TRACE(named.name + "/k" + std::to_string(k));
      OracleConfig config;
      config.k = k;
      const OracleReport report = run_oracle(named.tree, config);
      EXPECT_TRUE(report.ok()) << report.summary();
    }
  }
}

TEST(OracleTest, PassesUnderBreakdownSchedules) {
  const Tree comb = make_comb(10, 4);
  const Tree spider = make_spider(6, 8);
  for (const ScheduleKind kind :
       {ScheduleKind::kRoundRobin, ScheduleKind::kBurst,
        ScheduleKind::kRollingOutage, ScheduleKind::kRandom}) {
    for (const std::int64_t horizon : {60, 4000}) {
      SCOPED_TRACE(static_cast<int>(kind));
      SCOPED_TRACE(horizon);
      OracleConfig config;
      config.k = 4;
      config.schedule.kind = kind;
      config.schedule.horizon = horizon;  // starving and ample variants
      config.schedule.period = 3;
      config.schedule.p = 0.5;
      config.schedule.seed = 11;
      EXPECT_TRUE(run_oracle(comb, config).ok());
      EXPECT_TRUE(run_oracle(spider, config).ok());
    }
  }
}

TEST(OracleTest, AsyncEquivalenceLegPassesOnExoticSchedulers) {
  // The round-robin async legs run on every instance; an exotic spec
  // additionally drives the batched-vs-stepped differential. All must
  // hold across the scheduler kinds.
  const Tree comb = make_comb(10, 4);
  const Tree spider = make_spider(6, 8);
  for (const AsyncKind kind :
       {AsyncKind::kRoundRobin, AsyncKind::kFixedRate, AsyncKind::kLaggard,
        AsyncKind::kRandom}) {
    SCOPED_TRACE(static_cast<int>(kind));
    OracleConfig config;
    config.k = 4;
    config.async.kind = kind;
    config.async.period = 3;
    config.async.num_slow = 2;
    config.async.max_delay = 3;
    config.async.seed = 11;
    EXPECT_TRUE(run_oracle(comb, config).ok())
        << run_oracle(comb, config).summary();
    EXPECT_TRUE(run_oracle(spider, config).ok())
        << run_oracle(spider, config).summary();
  }
}

TEST(OracleTest, PassesOnNonPaperPolicies) {
  // Ablation policies void the bound checks but everything else (run
  // sanity, load-counter differential, invariants) still applies.
  const Tree tree = make_caterpillar(20, 3);
  for (const ReanchorPolicy policy :
       {ReanchorPolicy::kRandom, ReanchorPolicy::kFirstFit,
        ReanchorPolicy::kMostLoaded}) {
    OracleConfig config;
    config.k = 6;
    config.bfdn.policy = policy;
    const OracleReport report = run_oracle(tree, config);
    EXPECT_TRUE(report.ok()) << report.summary();
  }
}

// The ISSUE acceptance demo, direct form: the load-leak off-by-one on a
// pinned 5-node instance is caught by the load-counter differential.
TEST(OracleTest, LoadLeakFaultIsCaught) {
  const Tree tree = Tree::from_parents({kInvalidNode, 0, 0, 1, 2});
  OracleConfig config;
  config.k = 4;
  config.bfdn.fault_load_leak = true;
  const OracleReport report = run_oracle(tree, config);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.failed(OracleCheck::kLoadCounters))
      << report.summary();

  config.bfdn.fault_load_leak = false;
  EXPECT_TRUE(run_oracle(tree, config).ok());
}

// The ISSUE acceptance demo, fuzzer form: with the fault injected, the
// fuzzer finds a counterexample and shrinks it to <= 32 nodes.
TEST(FuzzTest, InjectedFaultIsFoundAndShrunkSmall) {
  FuzzOptions options;
  options.seed = 1;
  options.budget_s = 60.0;
  options.max_cases = 200;  // found at case 1; cap for CI robustness
  options.max_nodes = 400;
  options.inject_load_leak = true;

  const FuzzReport report = run_fuzz(options);
  ASSERT_FALSE(report.ok());
  const FuzzCounterexample& cex = report.counterexamples.front();
  EXPECT_EQ(cex.check, OracleCheck::kLoadCounters) << cex.detail;
  EXPECT_LE(cex.shrunk.tree.num_nodes(), 32) << cex.recipe;
  EXPECT_GE(cex.original_nodes, cex.shrunk.tree.num_nodes());
  EXPECT_LE(cex.shrunk.config.k, 16);
  // The shrunk instance still reproduces the failure on its own.
  const OracleReport check = run_oracle(cex.shrunk.tree, cex.shrunk.config);
  EXPECT_TRUE(check.failed(cex.check)) << check.summary();
}

TEST(FuzzTest, HealthySeedCorpusIsClean) {
  FuzzOptions options;
  options.seed = 1;
  options.budget_s = 5.0;
  options.max_nodes = 200;
  const FuzzReport report = run_fuzz(options);
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.cases_run, 10);
}

TEST(FuzzTest, CaseConstructionIsDeterministic) {
  FuzzOptions options;
  options.seed = 99;
  for (std::int32_t index : {0, 5, 17}) {
    std::string recipe_a, recipe_b;
    OracleConfig config_a, config_b;
    const Tree a = build_fuzz_case(options, index, &recipe_a, &config_a);
    const Tree b = build_fuzz_case(options, index, &recipe_b, &config_b);
    EXPECT_EQ(recipe_a, recipe_b);
    EXPECT_EQ(a.num_nodes(), b.num_nodes());
    EXPECT_EQ(config_a.k, config_b.k);
    EXPECT_EQ(config_a.schedule.kind, config_b.schedule.kind);
  }
}

TEST(ShrinkTest, IsDeterministicAndPreservesFailure) {
  // Shrink the same failing instance twice; byte-identical outcomes.
  FuzzOptions options;
  options.seed = 1;
  options.inject_load_leak = true;
  std::string recipe;
  OracleConfig config;
  const Tree tree = build_fuzz_case(options, 1, &recipe, &config);
  const OracleReport report = run_oracle(tree, config);
  ASSERT_TRUE(report.failed(OracleCheck::kLoadCounters)) << recipe;

  const ShrinkResult a = shrink(tree, config, OracleCheck::kLoadCounters);
  const ShrinkResult b = shrink(tree, config, OracleCheck::kLoadCounters);
  EXPECT_EQ(a.tree.num_nodes(), b.tree.num_nodes());
  EXPECT_EQ(a.config.k, b.config.k);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.accepted_reductions, b.accepted_reductions);
  EXPECT_LT(a.tree.num_nodes(), tree.num_nodes());
  for (NodeId v = 0; v < a.tree.num_nodes(); ++v) {
    EXPECT_EQ(a.tree.parent(v), b.tree.parent(v));
  }
}

TEST(ShrinkTest, RejectsHealthyInstance) {
  OracleConfig config;
  config.k = 4;
  EXPECT_THROW(
      (void)shrink(make_comb(6, 3), config, OracleCheck::kLoadCounters),
      CheckError);
}

}  // namespace
}  // namespace bfdn
