#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

#include "support/check.h"
#include "support/cli.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/strings.h"
#include "support/table.h"
#include "support/thread_pool.h"

namespace bfdn {
namespace {

TEST(CheckTest, RequireThrowsWithMessage) {
  try {
    BFDN_REQUIRE(1 == 2, "custom context");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("custom context"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(CheckTest, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(BFDN_CHECK(2 + 2 == 4));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(RngTest, NextBelowOneIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(RngTest, NextBelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), CheckError);
}

TEST(RngTest, NextIntCoversFullInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBoolRespectsProbabilityRoughly) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.next_bool(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(RngTest, WeightedNeverPicksZeroWeight) {
  Rng rng(5);
  const std::vector<double> w{0.0, 1.0, 0.0, 3.0};
  for (int i = 0; i < 500; ++i) {
    const std::size_t pick = rng.next_weighted(w);
    EXPECT_TRUE(pick == 1 || pick == 3);
  }
}

TEST(RngTest, WeightedNeedsPositiveTotal) {
  Rng rng(5);
  EXPECT_THROW(rng.next_weighted({0.0, 0.0}), CheckError);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SplitStreamsAreIndependentOfParentOrder) {
  Rng a(77);
  Rng child = a.split();
  const auto first = child();
  Rng b(77);
  Rng child2 = b.split();
  EXPECT_EQ(child2(), first);
}

TEST(StatsTest, RunningStatBasics) {
  RunningStat s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(StatsTest, EmptyStatThrows) {
  RunningStat s;
  EXPECT_THROW(s.mean(), CheckError);
  EXPECT_THROW(s.min(), CheckError);
}

TEST(StatsTest, PercentileEndpointsAndMedian) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
}

TEST(StatsTest, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.25), 2.5);
}

TEST(StatsTest, HistogramCountsAndMaxKey) {
  Histogram h;
  h.add(3);
  h.add(3);
  h.add(-1, 5);
  EXPECT_EQ(h.at(3), 2u);
  EXPECT_EQ(h.at(-1), 5u);
  EXPECT_EQ(h.at(99), 0u);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.max_key(), 3);
  EXPECT_EQ(h.to_string(), "-1:5 3:2");
}

TEST(StringsTest, FormatJoinSplit) {
  EXPECT_EQ(str_format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("a,", ','), (std::vector<std::string>{"a", ""}));
}

TEST(TableTest, ConsoleAlignsColumns) {
  Table t({"name", "v"});
  t.add_row({"x", "10"});
  t.add_row({"longer", "2"});
  const std::string out = t.to_console();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TableTest, CsvEscapesSpecials) {
  Table t({"a"});
  t.add_row({"x,y"});
  t.add_row({"q\"z"});
  const std::string out = t.to_csv();
  EXPECT_NE(out.find("\"x,y\""), std::string::npos);
  EXPECT_NE(out.find("\"q\"\"z\""), std::string::npos);
}

TEST(TableTest, MarkdownHasSeparatorRow) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_NE(t.to_markdown().find("|---|---|"), std::string::npos);
}

TEST(TableTest, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(CliTest, ParsesAllTypes) {
  CliParser cli("prog", "test");
  cli.add_int("n", 10, "count");
  cli.add_double("x", 0.5, "ratio");
  cli.add_string("name", "d", "label");
  cli.add_bool("flag", false, "toggle");
  const char* argv[] = {"prog", "--n=42", "--x", "1.25", "--name=zoo",
                        "--flag"};
  ASSERT_TRUE(cli.parse(6, argv));
  EXPECT_EQ(cli.get_int("n"), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("x"), 1.25);
  EXPECT_EQ(cli.get_string("name"), "zoo");
  EXPECT_TRUE(cli.get_bool("flag"));
}

TEST(CliTest, DefaultsSurviveEmptyArgv) {
  CliParser cli("prog", "test");
  cli.add_int("n", 10, "count");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("n"), 10);
}

TEST(CliTest, RejectsUnknownFlagAndBadValues) {
  CliParser cli("prog", "test");
  cli.add_int("n", 10, "count");
  const char* unknown[] = {"prog", "--mystery=1"};
  EXPECT_THROW(cli.parse(2, unknown), CheckError);
  const char* bad[] = {"prog", "--n=abc"};
  EXPECT_THROW(cli.parse(2, bad), CheckError);
}

TEST(CliTest, HelpReturnsFalse) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(JsonWriterTest, CompactObjectWithAllValueKinds) {
  JsonWriter w;
  w.begin_object();
  w.kv("name", "a\"b\\c\n");
  w.kv("count", std::int64_t{-3});
  w.kv("big", std::uint64_t{18446744073709551615ULL});
  w.kv("ratio", 0.25, 2);
  w.kv("on", true);
  w.key("none").value_null();
  w.key("items").begin_array();
  w.value(std::int64_t{1});
  w.value("two");
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"a\\\"b\\\\c\\n\",\"count\":-3,"
            "\"big\":18446744073709551615,\"ratio\":0.25,\"on\":true,"
            "\"none\":null,\"items\":[1,\"two\"]}");
}

TEST(JsonWriterTest, RawSplicesVerbatim) {
  JsonWriter w;
  w.begin_object();
  w.key("result").raw("{\"rounds\":7}");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"result\":{\"rounds\":7}}");
}

TEST(JsonWriterTest, PrettyIndentsNestedContainers) {
  JsonWriter w(/*pretty=*/true);
  w.begin_object();
  w.kv("a", std::int64_t{1});
  w.key("b").begin_array();
  w.value(std::int64_t{2});
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(JsonParseTest, RoundTripsWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.kv("n", std::int64_t{42});
  w.kv("seed", std::uint64_t{18446744073709551615ULL});
  w.kv("label", "x\ty");
  w.kv("frac", 0.5, 3);
  w.kv("flag", false);
  w.end_object();

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(w.str(), doc, &error)) << error;
  EXPECT_EQ(doc.get_int("n", 0), 42);
  EXPECT_EQ(doc.get_uint("seed", 0), 18446744073709551615ULL);
  EXPECT_EQ(doc.get_string("label", ""), "x\ty");
  EXPECT_DOUBLE_EQ(doc.get_double("frac", 0), 0.5);
  EXPECT_FALSE(doc.get_bool("flag", true));
}

TEST(JsonParseTest, NestedAccessAndDefaults) {
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(
      "{\"outer\": {\"list\": [10, 20, 30], \"null_field\": null}}", doc,
      &error))
      << error;
  const JsonValue& outer = doc.at("outer");
  ASSERT_TRUE(outer.has("list"));
  EXPECT_EQ(outer.at("list").size(), 3u);
  EXPECT_EQ(outer.at("list").at(1).as_int(), 20);
  EXPECT_TRUE(outer.at("null_field").is_null());
  EXPECT_EQ(outer.get_int("absent", -7), -7);
}

TEST(JsonParseTest, UnicodeEscapesDecodeToUtf8) {
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse("{\"s\": \"\\u00e9\\u0041\"}", doc, &error))
      << error;
  EXPECT_EQ(doc.get_string("s", ""), "\xc3\xa9"
                                     "A");
}

TEST(JsonParseTest, RejectsMalformedDocuments) {
  JsonValue doc;
  std::string error;
  EXPECT_FALSE(json_parse("{\"a\": }", doc, &error));
  EXPECT_FALSE(json_parse("{\"a\": 1,}", doc, &error));
  EXPECT_FALSE(json_parse("[1, 2", doc, &error));
  EXPECT_FALSE(json_parse("{\"a\": 1} trailing", doc, &error));
  EXPECT_FALSE(json_parse("", doc, &error));
}

TEST(JsonParseTest, DepthLimitGuardsRecursion) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  JsonValue doc;
  std::string error;
  EXPECT_FALSE(json_parse(deep, doc, &error));
  EXPECT_NE(error.find("deep"), std::string::npos);
}

TEST(JsonParseTest, WrongTypeAccessorThrows) {
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse("{\"s\": \"text\"}", doc, &error));
  EXPECT_THROW(doc.at("s").as_int(), CheckError);
  EXPECT_THROW(doc.at("missing"), CheckError);
}

TEST(ThreadPoolTest, RunsAllJobs) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleRethrowsFirstJobException) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([&ran] {
    ++ran;
    throw std::runtime_error("boom");
  });
  pool.submit([&ran] { ++ran; });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // Every job still ran to completion (the failure did not wedge the
  // pool), and the stored exception was consumed: the pool is reusable
  // and a clean batch waits without throwing.
  EXPECT_EQ(ran.load(), 2);
  pool.submit([&ran] { ++ran; });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPoolTest, OnlyFirstExceptionIsKept) {
  ThreadPool pool(1);  // serial worker: deterministic "first"
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::logic_error("second"); });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle did not rethrow";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "first");
  }
}

}  // namespace
}  // namespace bfdn
