// Tests of the BFDN algorithm (Algorithm 1): correctness, termination,
// Theorem 1's runtime bound, Lemma 2's reanchor bound, and the claims
// used in the analysis — swept over the tree zoo and robot counts.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "baselines/offline.h"
#include "core/bfdn.h"
#include "graph/generators.h"
#include "sim/engine.h"

namespace bfdn {
namespace {

RunResult run_bfdn(const Tree& tree, std::int32_t k,
                   BfdnOptions options = BfdnOptions{},
                   bool check_invariants = false) {
  BfdnAlgorithm algo(k, options);
  RunConfig config;
  config.num_robots = k;
  config.check_invariants = check_invariants;
  return run_exploration(tree, algo, config);
}

// ---------------------------------------------------------------------
// Parameterized sweep: (zoo tree index, k).
// ---------------------------------------------------------------------

struct SweepParam {
  std::size_t tree_index;
  std::int32_t k;
};

class BfdnSweepTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  static const std::vector<NamedTree>& zoo() {
    static const std::vector<NamedTree> kZoo = make_tree_zoo(300, 2024);
    return kZoo;
  }
  const NamedTree& named() const {
    return zoo()[GetParam().tree_index];
  }
};

TEST_P(BfdnSweepTest, ExploresAndReturnsWithinTheorem1Bound) {
  const auto& [name, tree] = named();
  const std::int32_t k = GetParam().k;
  const RunResult result = run_bfdn(tree, k);

  EXPECT_TRUE(result.complete) << name;
  EXPECT_TRUE(result.all_at_root) << name;
  EXPECT_FALSE(result.hit_round_limit) << name;

  const double bound = theorem1_bound(tree.num_nodes(), tree.depth(),
                                      tree.max_degree(), k);
  EXPECT_LE(static_cast<double>(result.rounds), bound)
      << name << " k=" << k << " rounds=" << result.rounds;
}

TEST_P(BfdnSweepTest, Claim1IdleRoundsAtMostTwiceDepthPlusOne) {
  // Claim 1 states idle rounds <= D + 1, with the argument "when no
  // dangling edge remains all robots are on their way back". Measured
  // executions show up to ~2(D+1): a robot can be mid-BF *descending*
  // towards an anchor whose subtree other robots just finished, and it
  // completes the descent before climbing home (up to 2D rounds after
  // the last discovery, not D). Theorem 1's proof spends (D+1)k on this
  // term inside a D^2 budget, so the slack is immaterial there; we pin
  // the measured invariant at 2(D+1). See EXPERIMENTS.md, E1 notes.
  const auto& [name, tree] = named();
  const std::int32_t k = GetParam().k;
  const RunResult result = run_bfdn(tree, k);
  EXPECT_LE(result.rounds_with_idle, 2 * (tree.depth() + 1))
      << name << " k=" << k;
}

TEST_P(BfdnSweepTest, Lemma2ReanchorsPerDepthBounded) {
  const auto& [name, tree] = named();
  const std::int32_t k = GetParam().k;
  const RunResult result = run_bfdn(tree, k);
  const double bound = lemma2_bound(k, tree.max_degree());
  for (const auto& [depth, count] : result.reanchors_by_depth.buckets()) {
    if (depth == 0) continue;  // Lemma 2 covers d in {1, .., D-1}
    EXPECT_LE(static_cast<double>(count), bound)
        << name << " k=" << k << " depth=" << depth;
  }
}

TEST_P(BfdnSweepTest, EveryEdgeTraversedBothWays) {
  const auto& [name, tree] = named();
  const std::int32_t k = GetParam().k;
  const RunResult result = run_bfdn(tree, k);
  // 2(n-1) edge events == every edge crossed down and up at least once.
  EXPECT_EQ(result.edge_events, 2 * (tree.num_nodes() - 1))
      << name << " k=" << k;
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> params;
  const std::size_t num_trees = make_tree_zoo(300, 2024).size();
  for (std::size_t t = 0; t < num_trees; ++t) {
    for (std::int32_t k : {1, 2, 3, 8, 32, 100}) {
      params.push_back({t, k});
    }
  }
  return params;
}

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  static const auto zoo = make_tree_zoo(300, 2024);
  return zoo[info.param.tree_index].name + "_k" +
         std::to_string(info.param.k);
}

INSTANTIATE_TEST_SUITE_P(ZooTimesRobots, BfdnSweepTest,
                         ::testing::ValuesIn(sweep_params()), sweep_name);

// ---------------------------------------------------------------------
// Invariant-checked runs (Claims 2 and 4 enforced every round).
// ---------------------------------------------------------------------

TEST(BfdnInvariantTest, Claim2And4HoldOnSmallZoo) {
  for (const auto& [name, tree] : make_tree_zoo(64, 7)) {
    for (std::int32_t k : {2, 5, 16}) {
      const RunResult result =
          run_bfdn(tree, k, BfdnOptions{}, /*check_invariants=*/true);
      EXPECT_TRUE(result.complete) << name << " k=" << k;
    }
  }
}

// ---------------------------------------------------------------------
// Edge cases.
// ---------------------------------------------------------------------

TEST(BfdnEdgeTest, SingleNodeTree) {
  const Tree t = make_path(1);
  const RunResult result = run_bfdn(t, 4);
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.all_at_root);
  EXPECT_EQ(result.rounds, 0);
}

TEST(BfdnEdgeTest, SingleRobotMatchesDfsCost) {
  const auto zoo = make_tree_zoo(150, 55);
  for (const auto& [name, tree] : zoo) {
    const RunResult result = run_bfdn(tree, 1);
    EXPECT_TRUE(result.complete) << name;
    // One robot: 2(n-1) DN moves plus at most 2*D*(#reanchors) of
    // breadth-first repositioning; must at least dominate DFS cost.
    EXPECT_GE(result.rounds, 2 * (tree.num_nodes() - 1)) << name;
  }
}

TEST(BfdnEdgeTest, ManyMoreRobotsThanNodes) {
  const Tree t = make_complete_bary(2, 3);  // 15 nodes
  const RunResult result = run_bfdn(t, 200);
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.all_at_root);
  // With k >> n, runtime is governed by the D^2-ish term, not 2n/k.
  EXPECT_LE(result.rounds, static_cast<std::int64_t>(theorem1_bound(
                               t.num_nodes(), t.depth(), t.max_degree(),
                               200)) +
                               1);
}

TEST(BfdnEdgeTest, StarIsExploredInTwoWaves) {
  // k = n-1 robots on a star: every leaf gets a robot in round 1, all
  // return in round 2.
  const Tree t = make_star(17);
  const RunResult result = run_bfdn(t, 16);
  EXPECT_EQ(result.rounds, 2);
  EXPECT_TRUE(result.complete);
}

TEST(BfdnEdgeTest, PathDegeneratesToSingleExplorer) {
  // On a path only one robot can make progress; BFDN must still finish
  // in ~2n rounds and park the other robots.
  const Tree t = make_path(60);
  const RunResult result = run_bfdn(t, 8);
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.all_at_root);
  EXPECT_LE(result.rounds, 2 * t.num_nodes() + 2);
}

// ---------------------------------------------------------------------
// Reanchor-policy ablations: all policies stay correct; only the paper's
// least-loaded rule carries the Lemma 2 guarantee.
// ---------------------------------------------------------------------

class BfdnPolicyTest : public ::testing::TestWithParam<ReanchorPolicy> {};

TEST_P(BfdnPolicyTest, AllPoliciesExploreCorrectly) {
  for (const auto& [name, tree] : make_tree_zoo(150, 77)) {
    BfdnOptions options;
    options.policy = GetParam();
    options.seed = 99;
    const RunResult result = run_bfdn(tree, 8, options);
    EXPECT_TRUE(result.complete) << name;
    EXPECT_TRUE(result.all_at_root) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, BfdnPolicyTest,
    ::testing::Values(ReanchorPolicy::kLeastLoaded, ReanchorPolicy::kRandom,
                      ReanchorPolicy::kFirstFit,
                      ReanchorPolicy::kMostLoaded),
    [](const ::testing::TestParamInfo<ReanchorPolicy>& param_info) {
      switch (param_info.param) {
        case ReanchorPolicy::kLeastLoaded: return std::string("least");
        case ReanchorPolicy::kRandom: return std::string("random");
        case ReanchorPolicy::kFirstFit: return std::string("first");
        case ReanchorPolicy::kMostLoaded: return std::string("most");
      }
      return std::string("unknown");
    });

// ---------------------------------------------------------------------
// Shortcut-reanchor ablation (the design choice discussed after
// Algorithm 1: the paper returns robots to the root; the ablation
// re-anchors in place over the shortest explored path).
// ---------------------------------------------------------------------

TEST(BfdnShortcutTest, ExploresCompletelyOnZoo) {
  for (const auto& [name, tree] : make_tree_zoo(200, 909)) {
    for (std::int32_t k : {1, 4, 16}) {
      BfdnOptions options;
      options.shortcut_reanchor = true;
      const RunResult result = run_bfdn(tree, k, options);
      EXPECT_TRUE(result.complete) << name << " k=" << k;
      EXPECT_TRUE(result.all_at_root) << name << " k=" << k;
    }
  }
}

TEST(BfdnShortcutTest, NeverWorseOnDeepCombs) {
  // The return-to-root rule costs ~2*depth per excursion; shortcutting
  // should pay off exactly on deep trees with scattered work.
  const Tree tree = make_comb(40, 40);
  const std::int32_t k = 8;
  BfdnOptions shortcut;
  shortcut.shortcut_reanchor = true;
  const RunResult with = run_bfdn(tree, k, shortcut);
  const RunResult without = run_bfdn(tree, k);
  ASSERT_TRUE(with.complete);
  ASSERT_TRUE(without.complete);
  EXPECT_LE(with.rounds, without.rounds);
}

TEST(BfdnShortcutTest, WithinTheorem1BoundEmpirically) {
  // No proof covers the variant, but it should not blow the bound on
  // the standard zoo (it only removes detours through the root).
  for (const auto& [name, tree] : make_tree_zoo(200, 910)) {
    const std::int32_t k = 8;
    BfdnOptions options;
    options.shortcut_reanchor = true;
    const RunResult result = run_bfdn(tree, k, options);
    ASSERT_TRUE(result.complete) << name;
    EXPECT_LE(static_cast<double>(result.rounds),
              theorem1_bound(tree.num_nodes(), tree.depth(),
                             tree.max_degree(), k))
        << name;
  }
}

TEST(BfdnShortcutTest, NameReflectsVariant) {
  BfdnOptions options;
  options.shortcut_reanchor = true;
  EXPECT_EQ(BfdnAlgorithm(4, options).name(),
            "BFDN(least-loaded+shortcut)");
}

// ---------------------------------------------------------------------
// Depth-capped variant BFDN_1(k, k, d) (Section 5 building block).
// ---------------------------------------------------------------------

TEST(BfdnDepthCapTest, StillExploresCompletely) {
  for (const auto& [name, tree] : make_tree_zoo(150, 31)) {
    BfdnOptions options;
    options.depth_cap = std::max(tree.depth() / 2, 1);
    const RunResult result = run_bfdn(tree, 8, options);
    EXPECT_TRUE(result.complete) << name;
    EXPECT_TRUE(result.all_at_root) << name;
  }
}

TEST(BfdnDepthCapTest, NoReanchorsBelowCap) {
  const Tree tree = make_comb(12, 12);
  BfdnOptions options;
  options.depth_cap = 4;
  BfdnAlgorithm algo(6, options);
  RunConfig config;
  config.num_robots = 6;
  const RunResult result = run_exploration(tree, algo, config);
  EXPECT_TRUE(result.complete);
  for (const auto& [depth, count] : result.reanchors_by_depth.buckets()) {
    EXPECT_LE(depth, 4) << "anchor assigned below the cap";
  }
}

// ---------------------------------------------------------------------
// Comparisons promised by the analysis.
// ---------------------------------------------------------------------

TEST(BfdnComparisonTest, NearOptimalOnShallowBushyTrees) {
  // D = o(sqrt(n)) regime: BFDN should be within a small factor of the
  // offline lower bound.
  Rng rng(123);
  const Tree tree = make_tree_with_depth(4000, 10, rng);
  const std::int32_t k = 16;
  const RunResult result = run_bfdn(tree, k);
  EXPECT_TRUE(result.complete);
  const double lower = offline_lower_bound(tree.num_nodes(), tree.depth(), k);
  EXPECT_LE(static_cast<double>(result.rounds), 3.0 * lower)
      << "rounds=" << result.rounds << " lower=" << lower;
}

TEST(BfdnComparisonTest, OverheadBeyondOptimalIsDepthPolynomial) {
  // Measured overhead T - 2n/k stays under D^2 (log k + 3).
  Rng rng(321);
  for (std::int32_t depth : {5, 15, 40}) {
    const Tree tree = make_tree_with_depth(3000, depth, rng);
    const std::int32_t k = 32;
    const RunResult result = run_bfdn(tree, k);
    const double overhead =
        static_cast<double>(result.rounds) -
        2.0 * static_cast<double>(tree.num_nodes()) / k;
    const double budget = static_cast<double>(depth) * depth *
                          (std::log(32.0) + 3.0);
    EXPECT_LE(overhead, budget) << "D=" << depth;
  }
}

}  // namespace
}  // namespace bfdn
