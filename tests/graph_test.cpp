#include <gtest/gtest.h>

#include <set>

#include "graph/graph.h"
#include "graph/grid_world.h"
#include "support/check.h"
#include "support/rng.h"

namespace bfdn {
namespace {

Graph triangle_plus_tail() {
  // 0-1, 1-2, 2-0 triangle; 2-3 tail.
  return Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
}

TEST(GraphTest, BasicShape) {
  const Graph g = triangle_plus_tail();
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.origin(), 0);
  EXPECT_EQ(g.degree(2), 3);
  EXPECT_EQ(g.max_degree(), 3);
}

TEST(GraphTest, PortsEnumerateNeighbors) {
  const Graph g = triangle_plus_tail();
  std::set<NodeId> nbrs;
  for (std::int32_t p = 0; p < g.degree(2); ++p) {
    nbrs.insert(g.neighbor(2, p));
    const EdgeId e = g.edge_at(2, p);
    EXPECT_EQ(g.other_endpoint(e, 2), g.neighbor(2, p));
  }
  EXPECT_EQ(nbrs, (std::set<NodeId>{0, 1, 3}));
}

TEST(GraphTest, DistancesAndRadius) {
  const Graph g = triangle_plus_tail();
  EXPECT_EQ(g.distance(0), 0);
  EXPECT_EQ(g.distance(1), 1);
  EXPECT_EQ(g.distance(2), 1);
  EXPECT_EQ(g.distance(3), 2);
  EXPECT_EQ(g.radius(), 2);
}

TEST(GraphTest, RejectsSelfLoopDuplicateDisconnected) {
  EXPECT_THROW(Graph::from_edges(2, {{0, 0}}), CheckError);
  EXPECT_THROW(Graph::from_edges(2, {{0, 1}, {1, 0}}), CheckError);
  EXPECT_THROW(Graph::from_edges(3, {{0, 1}}), CheckError);  // node 2 cut
}

TEST(GraphTest, OtherEndpointValidatesMembership) {
  const Graph g = triangle_plus_tail();
  EXPECT_THROW(g.other_endpoint(0, 3), CheckError);  // edge 0 is 0-1
}

TEST(GridWorldTest, OpenGridShape) {
  const GridWorld world(4, 3, {});
  EXPECT_EQ(world.num_reachable_cells(), 12);
  // 4x3 grid: 2*4*3 - 4 - 3 = 17 edges.
  EXPECT_EQ(world.graph().num_edges(), 17);
  EXPECT_TRUE(world.distances_are_manhattan());
}

TEST(GridWorldTest, ObstacleRemovesCells) {
  const GridWorld world(5, 5, {Rect{1, 1, 2, 2}});
  EXPECT_EQ(world.num_reachable_cells(), 25 - 4);
  EXPECT_TRUE(world.blocked(1, 1));
  EXPECT_TRUE(world.blocked(2, 2));
  EXPECT_FALSE(world.blocked(0, 0));
  EXPECT_EQ(world.cell_node(1, 2), kInvalidNode);
}

TEST(GridWorldTest, WallForcesDetourBreakingManhattan) {
  // Vertical wall at x=2 spanning y=0..3 in a 6x5 grid: cells right of
  // the wall at low y require going over the top.
  const GridWorld world(6, 5, {Rect{2, 0, 2, 3}});
  EXPECT_FALSE(world.distances_are_manhattan());
  const NodeId v = world.cell_node(3, 0);
  ASSERT_NE(v, kInvalidNode);
  EXPECT_GT(world.graph().distance(v), 3);
}

TEST(GridWorldTest, OriginBlockedThrows) {
  EXPECT_THROW(GridWorld(3, 3, {Rect{0, 0, 1, 1}}), CheckError);
}

TEST(GridWorldTest, UnreachablePocketExcluded) {
  // Full-width wall at y=2 disconnects the top band.
  const GridWorld world(3, 5, {Rect{0, 2, 2, 2}});
  EXPECT_EQ(world.num_reachable_cells(), 6);
  EXPECT_EQ(world.cell_node(0, 4), kInvalidNode);
}

TEST(GridWorldTest, CellNodeRoundTrip) {
  const GridWorld world(4, 4, {Rect{3, 3, 3, 3}});
  for (NodeId v = 0; v < world.graph().num_nodes(); ++v) {
    const auto [x, y] = world.cell_of(v);
    EXPECT_EQ(world.cell_node(x, y), v);
  }
}

TEST(GridWorldTest, RandomWorldsAreValidAndDeterministic) {
  Rng r1(33), r2(33);
  const GridWorld a = GridWorld::random(20, 20, 8, 5, r1);
  const GridWorld b = GridWorld::random(20, 20, 8, 5, r2);
  EXPECT_EQ(a.num_reachable_cells(), b.num_reachable_cells());
  EXPECT_GE(a.num_reachable_cells(), 1);
  EXPECT_EQ(a.graph().num_edges(), b.graph().num_edges());
}

TEST(GridWorldTest, RenderMarksOriginAndWalls) {
  const GridWorld world(3, 2, {Rect{2, 1, 2, 1}});
  const std::string picture = world.render();
  EXPECT_NE(picture.find('O'), std::string::npos);
  EXPECT_NE(picture.find('#'), std::string::npos);
}

}  // namespace
}  // namespace bfdn
