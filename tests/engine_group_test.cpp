// Group-traversal semantics: the model lets several robots cross one
// edge in the same round (CTE does); the engine exposes this through
// try_take_dangling + join_dangling. These tests drive the API directly
// with purpose-built algorithms.
#include <gtest/gtest.h>

#include <functional>

#include "graph/generators.h"
#include "sim/engine.h"
#include "support/check.h"

namespace bfdn {
namespace {

class ScriptedAlgorithm : public Algorithm {
 public:
  using Fn = std::function<void(const ExplorationView&, MoveSelector&)>;
  explicit ScriptedAlgorithm(Fn fn) : fn_(std::move(fn)) {}
  std::string name() const override { return "scripted"; }
  void select_moves(const ExplorationView& view,
                    MoveSelector& selector) override {
    fn_(view, selector);
  }

 private:
  Fn fn_;
};

TEST(GroupMoveTest, WholeTeamCrossesOneEdgeTogether) {
  // Path: all 5 robots move as one caravan using join_dangling, then
  // climb home together.
  const Tree tree = make_path(8);
  ScriptedAlgorithm algo([](const ExplorationView& view,
                            MoveSelector& sel) {
    const NodeId token = sel.try_take_dangling(0);
    if (token != kInvalidNode) {
      for (std::int32_t r = 1; r < view.num_robots(); ++r) {
        sel.join_dangling(r, token);
      }
      return;
    }
    for (std::int32_t r = 0; r < view.num_robots(); ++r) {
      sel.move_up(r);
    }
  });
  RunConfig config;
  config.num_robots = 5;
  std::vector<TraceFrame> trace;
  config.trace = &trace;
  const RunResult result = run_exploration(tree, algo, config);
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.all_at_root);
  EXPECT_EQ(result.rounds, 2 * (tree.num_nodes() - 1));
  // The caravan is always together.
  for (const TraceFrame& frame : trace) {
    for (NodeId pos : frame.positions) {
      EXPECT_EQ(pos, frame.positions.front());
    }
  }
}

TEST(GroupMoveTest, EdgeEventsCountGroupCrossingOnce) {
  const Tree tree = make_path(5);
  ScriptedAlgorithm algo([](const ExplorationView& view,
                            MoveSelector& sel) {
    const NodeId token = sel.try_take_dangling(0);
    if (token != kInvalidNode) {
      for (std::int32_t r = 1; r < view.num_robots(); ++r) {
        sel.join_dangling(r, token);
      }
      return;
    }
    for (std::int32_t r = 0; r < view.num_robots(); ++r) sel.move_up(r);
  });
  RunConfig config;
  config.num_robots = 3;
  const RunResult result = run_exploration(tree, algo, config);
  ASSERT_TRUE(result.complete);
  // 4 edges, each crossed down (once as a group) and up: 8 events, even
  // though 3 robots crossed each time.
  EXPECT_EQ(result.edge_events, 8);
  std::int64_t moves = 0;
  for (auto m : result.robot_moves) moves += m;
  EXPECT_EQ(moves, 3 * result.rounds);
}

TEST(GroupMoveTest, ReservedTokensVisibleViaSelector) {
  const Tree tree = make_star(4);
  bool checked = false;
  ScriptedAlgorithm algo([&checked](const ExplorationView& view,
                                    MoveSelector& sel) {
    if (view.robot_pos(0) != view.root() || view.exploration_complete()) {
      // Caravan on a leaf (or done): climb home, then dive again.
      for (std::int32_t r = 0; r < view.num_robots(); ++r) {
        if (view.robot_pos(r) != view.root()) sel.move_up(r);
      }
      return;
    }
    const NodeId token = sel.try_take_dangling(0);
    ASSERT_NE(token, kInvalidNode);
    const auto reserved = sel.reserved_dangling_at(view.root());
    EXPECT_EQ(reserved.size(), 1u);
    EXPECT_EQ(reserved.front(), token);
    checked = true;
    sel.join_dangling(1, token);
  });
  RunConfig config;
  config.num_robots = 2;
  const RunResult result = run_exploration(tree, algo, config);
  EXPECT_TRUE(checked);
  EXPECT_TRUE(result.complete);
}

TEST(GroupMoveTest, MixedExclusiveAndGroupInOneRound) {
  // Star with 3 leaves, 4 robots: robots 0 and 1 group on one edge,
  // robots 2 and 3 take the other two exclusively. Everything is
  // explored in a single round.
  const Tree tree = make_star(4);
  ScriptedAlgorithm algo([](const ExplorationView& view,
                            MoveSelector& sel) {
    if (view.exploration_complete()) {
      for (std::int32_t r = 0; r < view.num_robots(); ++r) {
        if (view.robot_pos(r) != view.root()) sel.move_up(r);
      }
      return;
    }
    const NodeId token = sel.try_take_dangling(0);
    if (token == kInvalidNode) return;
    sel.join_dangling(1, token);
    (void)sel.try_take_dangling(2);
    (void)sel.try_take_dangling(3);
  });
  RunConfig config;
  config.num_robots = 4;
  const RunResult result = run_exploration(tree, algo, config);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.rounds, 2);  // one wave out, one wave home
}

}  // namespace
}  // namespace bfdn
