// Tests for the durable result store (src/store): segment framing,
// crash recovery (torn tails, checksum corruption, kill-9-style partial
// appends), write-behind visibility, compaction, and the end-to-end
// persistence contract — a served result recovered after a server
// restart is byte-identical to the bytes the original miss produced,
// and a damaged store never serves wrong bytes (it recomputes and
// overwrites).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "service/cache.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "store/result_store.h"
#include "store/segment.h"
#include "support/check.h"
#include "support/socket.h"
#include "support/strings.h"

namespace bfdn {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test store directory under gtest's temp root.
std::string test_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("bfdn_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

StoreOptions small_store(const std::string& dir) {
  StoreOptions options;
  options.dir = dir;
  options.segment_bytes = 4096;  // small: tests exercise rotation
  options.flush_interval_ms = 5;
  return options;
}

std::string payload_for(std::uint64_t key) {
  return str_format("{\"result\":%llu,\"blob\":\"%s\"}",
                    static_cast<unsigned long long>(key * 2654435761ull),
                    std::string(17 + key % 91, 'x').c_str());
}

/// Paths of the store's segment files, sequence order.
std::vector<std::string> segment_paths(const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::uint64_t seq = store::parse_segment_file_name(
        entry.path().filename().string());
    if (seq > 0) found.emplace_back(seq, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  for (auto& [seq, path] : found) paths.push_back(std::move(path));
  return paths;
}

// --- segment framing ---

TEST(SegmentTest, EncodeDecodeRoundTrip) {
  std::string buffer(store::kSegmentHeaderBytes, '\0');
  store::encode_record(0xdeadbeefcafe1234ull, "hello result", &buffer);
  ASSERT_EQ(buffer.size() % store::kRecordAlign, 0u);

  store::DecodedRecord record;
  ASSERT_EQ(store::decode_record(buffer.data(), buffer.size(),
                                 store::kSegmentHeaderBytes, &record),
            store::RecordStatus::kOk);
  EXPECT_EQ(record.fingerprint, 0xdeadbeefcafe1234ull);
  EXPECT_EQ(std::string(record.payload, record.payload_len),
            "hello result");
}

TEST(SegmentTest, ChecksumBindsPayloadToFingerprint) {
  // The same payload under two keys must produce different checksums:
  // a record transplanted to another fingerprint fails validation.
  EXPECT_NE(store::record_checksum(1, "payload"),
            store::record_checksum(2, "payload"));

  std::string buffer;
  store::encode_record(42, "payload", &buffer);
  buffer[0] ^= 1;  // flip one fingerprint bit
  store::DecodedRecord record;
  EXPECT_EQ(store::decode_record(buffer.data(), buffer.size(), 0, &record),
            store::RecordStatus::kCorrupt);
}

TEST(SegmentTest, TruncatedFrameIsTorn) {
  std::string buffer;
  store::encode_record(7, "0123456789abcdef0123", &buffer);
  store::DecodedRecord record;
  for (const std::size_t cut : {buffer.size() - 1, buffer.size() - 9,
                                store::kRecordHeaderBytes - 1,
                                std::size_t{3}}) {
    EXPECT_EQ(store::decode_record(buffer.data(), cut, 0, &record),
              store::RecordStatus::kTorn)
        << "cut=" << cut;
  }
}

TEST(SegmentTest, FileNameRoundTrip) {
  EXPECT_EQ(store::segment_file_name(42), "seg-000042.bfdnseg");
  EXPECT_EQ(store::parse_segment_file_name("seg-000042.bfdnseg"), 42u);
  EXPECT_EQ(store::parse_segment_file_name("seg-1234567.bfdnseg"),
            1234567u);
  EXPECT_EQ(store::parse_segment_file_name("seg-.bfdnseg"), 0u);
  EXPECT_EQ(store::parse_segment_file_name("seg-12x4.bfdnseg"), 0u);
  EXPECT_EQ(store::parse_segment_file_name("other.txt"), 0u);
}

// --- store basics ---

TEST(ResultStoreTest, PutIsVisibleBeforeAndAfterFlush) {
  const std::string dir = test_dir("visible");
  ResultStore store(small_store(dir));
  store.put(1, payload_for(1));
  // Write-behind: readable immediately from the pending buffer.
  const auto before = store.get(1);
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(*before, payload_for(1));
  store.flush();
  const auto after = store.get(1);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(*after, payload_for(1));
  EXPECT_EQ(store.stats().pending_records, 0);
  EXPECT_GE(store.stats().flushes, 1);
}

TEST(ResultStoreTest, ReopenRecoversEveryRecordByteIdentical) {
  const std::string dir = test_dir("reopen");
  constexpr std::uint64_t kCount = 60;  // spans several 4 KiB segments
  {
    ResultStore store(small_store(dir));
    for (std::uint64_t key = 1; key <= kCount; ++key) {
      store.put(key, payload_for(key));
    }
    // Destructor flushes; no explicit flush() on purpose.
  }
  ResultStore store(small_store(dir));
  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.recovered_records, static_cast<std::int64_t>(kCount));
  EXPECT_EQ(stats.torn_tail_truncations, 0);
  EXPECT_EQ(stats.corrupted_skipped, 0);
  EXPECT_GT(stats.segments, 1) << "rotation never triggered";
  for (std::uint64_t key = 1; key <= kCount; ++key) {
    const auto payload = store.get(key);
    ASSERT_TRUE(payload.has_value()) << key;
    EXPECT_EQ(*payload, payload_for(key)) << key;
  }
  EXPECT_FALSE(store.get(kCount + 1).has_value());
}

TEST(ResultStoreTest, DuplicatePutsAreDroppedNotAppended) {
  const std::string dir = test_dir("dedup");
  ResultStore store(small_store(dir));
  store.put(5, payload_for(5));
  store.flush();
  store.put(5, payload_for(5));  // already durable
  store.put(6, payload_for(6));
  store.put(6, payload_for(6));  // already pending
  store.flush();
  EXPECT_EQ(store.stats().appended_records, 2);
  EXPECT_EQ(store.stats().records, 2);
}

TEST(ResultStoreTest, GetManyFillsFoundKeysInOnePass) {
  const std::string dir = test_dir("getmany");
  ResultStore store(small_store(dir));
  store.put(10, payload_for(10));
  store.put(11, payload_for(11));
  store.flush();
  store.put(12, payload_for(12));  // still pending: must be visible too

  std::vector<std::optional<std::string>> out;
  store.get_many({10, 99, 12, 11}, &out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], payload_for(10));
  EXPECT_FALSE(out[1].has_value());
  EXPECT_EQ(out[2], payload_for(12));
  EXPECT_EQ(out[3], payload_for(11));
  EXPECT_EQ(store.stats().bulk_lookups, 1);
  EXPECT_EQ(store.stats().bulk_key_hits, 3);
}

// --- crash recovery ---

TEST(ResultStoreTest, TornTailIsTruncatedAndStoreStaysUsable) {
  const std::string dir = test_dir("torn");
  {
    ResultStore store(small_store(dir));
    store.put(1, payload_for(1));
    store.put(2, payload_for(2));
  }
  // A kill -9 mid-append leaves a prefix of the last frame: fabricate
  // one by appending a valid header + partial payload.
  const std::vector<std::string> paths = segment_paths(dir);
  ASSERT_FALSE(paths.empty());
  std::string frame;
  store::encode_record(3, payload_for(3), &frame);
  const std::string partial = frame.substr(0, frame.size() - 5);
  const auto before = fs::file_size(paths.back());
  {
    std::ofstream out(paths.back(), std::ios::binary | std::ios::app);
    out.write(partial.data(),
              static_cast<std::streamsize>(partial.size()));
  }

  ResultStore store(small_store(dir));
  EXPECT_EQ(store.stats().torn_tail_truncations, 1);
  EXPECT_EQ(store.stats().recovered_records, 2);
  EXPECT_EQ(fs::file_size(paths.back()), before) << "tail not truncated";
  EXPECT_EQ(store.get(1), payload_for(1));
  EXPECT_EQ(store.get(2), payload_for(2));
  EXPECT_FALSE(store.get(3).has_value());

  // The truncated store keeps working: the lost record is re-put and
  // survives the next reopen.
  store.put(3, payload_for(3));
  store.flush();
  ResultStore reopened(small_store(dir));
  EXPECT_EQ(reopened.stats().torn_tail_truncations, 0);
  EXPECT_EQ(reopened.get(3), payload_for(3));
}

TEST(ResultStoreTest, CorruptedRecordIsSkippedCountedAndOverwritable) {
  const std::string dir = test_dir("corrupt");
  {
    ResultStore store(small_store(dir));
    store.put(1, payload_for(1));
    store.put(2, payload_for(2));
  }
  // Flip one payload byte of the first record (directly after the
  // segment magic + record header).
  const std::vector<std::string> paths = segment_paths(dir);
  ASSERT_FALSE(paths.empty());
  {
    std::fstream file(paths.front(),
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(static_cast<std::streamoff>(store::kSegmentHeaderBytes +
                                           store::kRecordHeaderBytes));
    char byte = 0;
    file.get(byte);
    file.seekp(static_cast<std::streamoff>(store::kSegmentHeaderBytes +
                                           store::kRecordHeaderBytes));
    file.put(static_cast<char>(byte ^ 0x40));
  }

  ResultStore store(small_store(dir));
  EXPECT_EQ(store.stats().corrupted_skipped, 1);
  EXPECT_EQ(store.stats().recovered_records, 1);
  // Never serve wrong bytes: the damaged key misses...
  EXPECT_FALSE(store.get(1).has_value());
  EXPECT_EQ(store.get(2), payload_for(2));
  // ...and a recompute overwrites it (the new record appends; last
  // write wins on the next recovery).
  store.put(1, payload_for(1));
  store.flush();
  EXPECT_EQ(store.get(1), payload_for(1));
  ResultStore reopened(small_store(dir));
  EXPECT_EQ(reopened.get(1), payload_for(1));
}

TEST(ResultStoreTest, ForeignFileIsResetNotTrusted) {
  const std::string dir = test_dir("foreign");
  {
    std::ofstream out(
        (fs::path(dir) / store::segment_file_name(1)).string(),
        std::ios::binary);
    out << "this is not a segment file at all";
  }
  ResultStore store(small_store(dir));
  EXPECT_EQ(store.stats().recovered_records, 0);
  EXPECT_EQ(store.stats().torn_tail_truncations, 1);
  store.put(1, payload_for(1));
  store.flush();
  ResultStore reopened(small_store(dir));
  EXPECT_EQ(reopened.get(1), payload_for(1));
}

// --- compaction ---

TEST(ResultStoreTest, CompactKeepsLiveDropsColdReclaimsSpace) {
  const std::string dir = test_dir("compact");
  ResultStore store(small_store(dir));
  std::vector<std::uint64_t> live;
  for (std::uint64_t key = 1; key <= 50; ++key) {
    store.put(key, payload_for(key));
    if (key % 2 == 0) live.push_back(key);
  }
  const auto result = store.compact(live);
  EXPECT_EQ(result.kept, 25);
  EXPECT_EQ(result.dropped, 25);
  EXPECT_LT(result.bytes_after, result.bytes_before);
  EXPECT_EQ(store.stats().records, 25);
  for (std::uint64_t key = 1; key <= 50; ++key) {
    EXPECT_EQ(store.get(key).has_value(), key % 2 == 0) << key;
  }
  // The rewrite survives recovery, and dropped keys stay gone.
  ResultStore reopened(small_store(dir));
  EXPECT_EQ(reopened.stats().recovered_records, 25);
  for (const std::uint64_t key : live) {
    EXPECT_EQ(reopened.get(key), payload_for(key)) << key;
  }
  EXPECT_FALSE(reopened.get(1).has_value());
}

// --- cache tiering ---

TEST(ResultStoreTest, EvictedEntryComesBackAsStoreHit) {
  const std::string dir = test_dir("tier");
  ResultStore store(small_store(dir));
  ResultCache cache(/*capacity=*/2, &store);
  cache.put(1, payload_for(1));
  cache.put(2, payload_for(2));
  cache.put(3, payload_for(3));  // evicts 1 from memory, not from disk
  EXPECT_EQ(cache.stats().evictions, 1);

  const auto payload = cache.get(1);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, payload_for(1));
  EXPECT_EQ(cache.stats().store_hits, 1);
  EXPECT_EQ(cache.stats().misses, 0);

  // Unknown keys miss both tiers.
  EXPECT_FALSE(cache.get(99).has_value());
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(ResultStoreTest, CapacityZeroCacheStillReadsThroughStore) {
  const std::string dir = test_dir("tier0");
  ResultStore store(small_store(dir));
  ResultCache cache(/*capacity=*/0, &store);
  cache.put(1, payload_for(1));
  EXPECT_EQ(cache.stats().entries, 0u);
  const auto payload = cache.get(1);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, payload_for(1));
  EXPECT_EQ(cache.stats().store_hits, 1);
}

// --- end to end through the service ---

ServiceRequest store_request(std::uint64_t seed) {
  ServiceRequest request;
  request.id = str_format("p%llu", static_cast<unsigned long long>(seed));
  request.recipe.family = "spider";
  request.recipe.nodes = 120;
  request.recipe.depth = 6;
  request.recipe.arms = 5;
  request.recipe.seed = seed;
  request.algo.kind = AlgoKind::kBfdn;
  request.algo.k = 4;
  return request;
}

ServerOptions store_server_options(const std::string& dir) {
  ServerOptions options;
  options.threads = 2;
  options.queue_capacity = 16;
  options.cache_capacity = 64;
  options.store_dir = dir;
  options.store_segment_bytes = 4096;
  options.store_flush_ms = 5;
  return options;
}

/// Raw response line for one request (byte-identity comparisons).
std::string raw_call(std::uint16_t port, const std::string& line) {
  Socket socket = connect_local(port, /*recv_timeout_ms=*/30000);
  BFDN_CHECK(socket.send_all(line + "\n"), "send failed");
  const auto response = socket.recv_line();
  BFDN_CHECK(response.has_value(), "no response");
  return *response;
}

TEST(ServiceStoreTest, RestartServesByteIdenticalResponseFromStore) {
  const std::string dir = test_dir("service_restart");
  const ServiceRequest request = store_request(7);
  const std::string line = serialize_request(request);
  std::string miss_response;
  {
    ServiceServer server(store_server_options(dir));
    server.start();
    miss_response = raw_call(server.port(), line);
    EXPECT_NE(miss_response.find("\"cached\":false"), std::string::npos);
    server.drain();
  }
  ServiceServer server(store_server_options(dir));
  server.start();
  const std::string hit_response = raw_call(server.port(), line);
  server.drain();

  // The recovered response differs from the miss only in the cached
  // flag; the key and result object are byte-identical.
  const std::string expected = [&] {
    std::string s = miss_response;
    const auto pos = s.find("\"cached\":false");
    BFDN_CHECK(pos != std::string::npos, "no cached flag");
    s.replace(pos, 14, "\"cached\":true");
    return s;
  }();
  EXPECT_EQ(hit_response, expected);
  EXPECT_GE(server.cache_stats().store_hits, 1);
}

TEST(ServiceStoreTest, CorruptedStoreRecomputesAndNeverServesWrongBytes) {
  const std::string dir = test_dir("service_corrupt");
  const ServiceRequest request = store_request(9);
  const std::string line = serialize_request(request);
  std::string miss_response;
  {
    ServiceServer server(store_server_options(dir));
    server.start();
    miss_response = raw_call(server.port(), line);
    server.drain();
  }
  // Corrupt every segment byte after each record header region: flip a
  // byte in the middle of the (single) record's payload.
  const std::vector<std::string> paths = segment_paths(dir);
  ASSERT_EQ(paths.size(), 1u);
  {
    std::fstream file(paths.front(),
                      std::ios::binary | std::ios::in | std::ios::out);
    const std::streamoff off = static_cast<std::streamoff>(
        store::kSegmentHeaderBytes + store::kRecordHeaderBytes + 10);
    file.seekg(off);
    char byte = 0;
    file.get(byte);
    file.seekp(off);
    file.put(static_cast<char>(byte ^ 0x08));
  }

  ServiceServer server(store_server_options(dir));
  server.start();
  const std::string response = raw_call(server.port(), line);
  // Served as a fresh compute (cached:false), with the same result
  // bytes as the original run — never the corrupted record.
  EXPECT_EQ(response, miss_response);
  // The recompute overwrote the record: a third boot serves it again.
  server.drain();
  ServiceServer third(store_server_options(dir));
  third.start();
  const std::string recovered = raw_call(third.port(), line);
  EXPECT_NE(recovered.find("\"cached\":true"), std::string::npos);
  third.drain();
}

TEST(ServiceStoreTest, CampaignColdFillBulkLoadsFromStore) {
  const std::string dir = test_dir("service_campaign");
  ServiceRequest campaign;
  campaign.type = RequestType::kCampaign;
  campaign.id = "c";
  campaign.recipe.family = "spider";
  campaign.recipe.nodes = 90;
  campaign.recipe.depth = 5;
  campaign.recipe.arms = 4;
  campaign.algo.kind = AlgoKind::kBfdn;
  campaign.campaign_ks = {2, 4, 8};
  campaign.campaign_seeds = {11, 22};
  const std::string line = serialize_request(campaign);
  std::string first;
  {
    ServiceServer server(store_server_options(dir));
    server.start();
    first = raw_call(server.port(), line);
    EXPECT_NE(first.find("\"members_total\":6"), std::string::npos);
    server.drain();
  }
  // Cold server, warm store: every member fills from one index pass.
  ServiceServer server(store_server_options(dir));
  server.start();
  const std::string second = raw_call(server.port(), line);
  for (const char* fragment : {"\"members_total\":6"}) {
    EXPECT_NE(second.find(fragment), std::string::npos);
  }
  EXPECT_EQ(second.find("\"cached\":false"), std::string::npos)
      << "some member recomputed despite a warm store";
  const StoreStats stats = server.store()->stats();
  EXPECT_EQ(stats.bulk_lookups, 1);
  EXPECT_EQ(stats.bulk_key_hits, 6);
  server.drain();
}

TEST(ServiceStoreTest, CompactRequestDropsEvictedEntries) {
  const std::string dir = test_dir("service_compact");
  ServerOptions options = store_server_options(dir);
  options.cache_capacity = 4;  // small LRU: early requests evict
  ServiceServer server(options);
  server.start();
  ServiceClient client(server.port());
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const JsonValue response = client.run(store_request(seed));
    ASSERT_EQ(response.get_string("status", ""), "ok");
  }
  const JsonValue compacted = client.compact();
  ASSERT_EQ(compacted.get_string("status", ""), "ok");
  const JsonValue& summary = compacted.at("compact");
  EXPECT_EQ(summary.get_int("kept", -1), 4);
  EXPECT_EQ(summary.get_int("dropped", -1), 4);
  server.drain();
}

TEST(ServiceStoreTest, NoStoreServerReportsCompactError) {
  ServerOptions options;
  options.threads = 1;
  options.queue_capacity = 4;
  ServiceServer server(options);
  server.start();
  ServiceClient client(server.port());
  const JsonValue response = client.compact();
  EXPECT_EQ(response.get_string("status", ""), "error");
  server.drain();
}

}  // namespace
}  // namespace bfdn
