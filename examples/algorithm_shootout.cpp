// Algorithm shootout: run every exploration algorithm in the library on
// one instance (generated or loaded) and print a ranked comparison —
// the quickest way to see how the paper's landscape plays out on a tree
// you care about.
//
//   $ ./algorithm_shootout --nodes 3000 --depth 60 --k 16
//   $ ./bfdn generate --family comb --arms 30 --depth 30 --out c.txt
//     && ./algorithm_shootout --tree c.txt --k 16
#include <algorithm>
#include <cstdio>

#include "exp/campaign.h"
#include "graph/generators.h"
#include "graph/tree_io.h"
#include "sim/engine.h"
#include "support/cli.h"
#include "support/table.h"

namespace bfdn {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("algorithm_shootout",
                "compare every algorithm on one tree instance");
  cli.add_string("tree", "", "tree file (empty: generate)");
  cli.add_int("nodes", 3000, "generated tree size");
  cli.add_int("depth", 60, "generated tree depth");
  cli.add_int("seed", 12, "generation seed");
  cli.add_int("k", 16, "team size");
  if (!cli.parse(argc, argv)) return 0;

  Tree tree = [&] {
    const std::string path = cli.get_string("tree");
    if (!path.empty()) return load_tree(path);
    Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
    return make_tree_with_depth(
        cli.get_int("nodes"),
        static_cast<std::int32_t>(cli.get_int("depth")), rng);
  }();
  const auto k = static_cast<std::int32_t>(cli.get_int("k"));
  std::printf("instance: %s, k = %d\n", tree.summary().c_str(), k);
  std::printf("Theorem 1 bound: %.0f; offline lower bound: %.0f\n\n",
              theorem1_bound(tree.num_nodes(), tree.depth(),
                             tree.max_degree(), k),
              offline_lower_bound(tree.num_nodes(), tree.depth(), k));

  Campaign campaign;
  campaign.add_tree("instance", std::move(tree));
  campaign.add_team_size(k);
  for (AlgorithmKind kind :
       {AlgorithmKind::kBfdn, AlgorithmKind::kBfdnShortcut,
        AlgorithmKind::kCte, AlgorithmKind::kDnSwarm,
        AlgorithmKind::kBfdnEll2, AlgorithmKind::kBfdnEll3,
        AlgorithmKind::kBfsLevels, AlgorithmKind::kBrass}) {
    campaign.add_algorithm(kind);
  }
  auto results = campaign.run();
  std::sort(results.begin(), results.end(),
            [](const CellResult& a, const CellResult& b) {
              return a.rounds < b.rounds;
            });

  Table table({"rank", "algorithm", "rounds", "vs_lower", "overhead",
               "complete"});
  std::int64_t rank = 1;
  for (const CellResult& result : results) {
    table.add_row({cell(rank++), algorithm_kind_name(result.algorithm),
                   cell(result.rounds), cell(result.ratio_vs_lower, 2),
                   cell(result.overhead, 0),
                   cell_bool(result.complete)});
  }
  std::fputs(table.to_console().c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) { return bfdn::run(argc, argv); }
