// Quickstart: explore an unknown tree with a team of robots.
//
//   $ ./quickstart --robots 8 --nodes 500 --depth 12
//
// Builds a random tree (hidden from the algorithm), runs BFDN on it,
// and reports the measured rounds against Theorem 1's guarantee and the
// offline lower bound. This is the smallest end-to-end use of the
// library: generator -> algorithm -> engine -> metrics.
#include <cstdio>

#include "baselines/offline.h"
#include "core/bfdn.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "support/cli.h"

namespace bfdn {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("quickstart", "explore one random tree with BFDN");
  cli.add_int("robots", 8, "team size k");
  cli.add_int("nodes", 500, "number of tree nodes n");
  cli.add_int("depth", 12, "tree depth D");
  cli.add_int("seed", 1, "tree generation seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto k = static_cast<std::int32_t>(cli.get_int("robots"));
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  const Tree tree = make_tree_with_depth(
      cli.get_int("nodes"), static_cast<std::int32_t>(cli.get_int("depth")),
      rng);
  std::printf("hidden tree : %s\n", tree.summary().c_str());

  // The algorithm sees only the ExplorationView the engine exposes:
  // explored nodes, dangling edges, robot positions — never the tree.
  BfdnAlgorithm algorithm(k);
  RunConfig config;
  config.num_robots = k;
  config.check_invariants = true;  // Claims 2 and 4, verified every round
  const RunResult result = run_exploration(tree, algorithm, config);

  std::printf("algorithm   : %s with k = %d robots\n",
              algorithm.name().c_str(), k);
  std::printf("rounds      : %lld\n",
              static_cast<long long>(result.rounds));
  std::printf("complete    : %s, all robots home: %s\n",
              result.complete ? "yes" : "no",
              result.all_at_root ? "yes" : "no");
  std::printf("edge events : %lld (= 2(n-1) when every edge was crossed "
              "both ways)\n",
              static_cast<long long>(result.edge_events));
  std::printf("reanchors   : %lld total; per depth: %s\n",
              static_cast<long long>(result.total_reanchors),
              result.reanchors_by_depth.to_string().c_str());

  const double bound = theorem1_bound(tree.num_nodes(), tree.depth(),
                                      tree.max_degree(), k);
  const double lower =
      offline_lower_bound(tree.num_nodes(), tree.depth(), k);
  const OfflineSplitPlan plan = offline_dfs_split(tree, k);
  std::printf("Theorem 1   : %.0f  (measured/bound = %.3f)\n", bound,
              static_cast<double>(result.rounds) / bound);
  std::printf("offline     : lower bound %.0f, DFS-split schedule %lld\n",
              lower, static_cast<long long>(plan.rounds));
  return result.complete && result.all_at_root ? 0 : 1;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) { return bfdn::run(argc, argv); }
