// Whiteboard expedition — the write-read model of Section 4.1
// (Proposition 6), played out as a cave-diving expedition with strict
// communication discipline: divers can only debrief at base camp (the
// root), every junction has a slate (whiteboard) listing which passages
// a diver has come back from, and each diver carries a tiny wrist
// slate: the port path to their assigned sector plus one bit per
// passage of that sector.
//
//   $ ./whiteboard_expedition --divers 12 --nodes 1200 --depth 18
//
// The example runs the central-planner BFDN (Algorithm 2) and reports
// rounds vs the Theorem 1 bound (Proposition 6 says the restricted
// model costs nothing extra) and the memory high-water mark vs the
// Delta + D log2(Delta) allowance.
#include <cstdio>

#include "core/bfdn.h"
#include "distributed/writeread.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "support/cli.h"

namespace bfdn {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("whiteboard_expedition",
                "restricted-communication exploration with a base-camp "
                "planner");
  cli.add_int("divers", 12, "team size");
  cli.add_int("nodes", 1200, "cave junction count");
  cli.add_int("depth", 18, "cave depth");
  cli.add_int("seed", 3, "cave generation seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto k = static_cast<std::int32_t>(cli.get_int("divers"));
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  const Tree cave = make_tree_with_depth(
      cli.get_int("nodes"), static_cast<std::int32_t>(cli.get_int("depth")),
      rng);
  std::printf("cave        : %s\n", cave.summary().c_str());

  const WriteReadResult wr = run_write_read_bfdn(cave, k);

  // Reference: the same team with unrestricted communication.
  BfdnAlgorithm algorithm(k);
  RunConfig config;
  config.num_robots = k;
  const RunResult cc = run_exploration(cave, algorithm, config);

  const double bound = theorem1_bound(cave.num_nodes(), cave.depth(),
                                      cave.max_degree(), k);
  std::printf("divers      : %d, planner at base camp only\n", k);
  std::printf("rounds      : %lld restricted vs %lld unrestricted "
              "(shared Theorem 1 bound %.0f)\n",
              static_cast<long long>(wr.rounds),
              static_cast<long long>(cc.rounds), bound);
  std::printf("coverage    : %s; all divers back at camp: %s\n",
              wr.complete ? "full" : "INCOMPLETE",
              wr.all_at_root ? "yes" : "no");
  std::printf("wrist slate : %lld bits used at peak, model allowance "
              "%lld bits (Delta + D log2 Delta)\n",
              static_cast<long long>(wr.max_robot_memory_bits),
              static_cast<long long>(wr.memory_allowance_bits));
  std::printf("planner     : final working depth %d of %d; %lld sector "
              "assignments (%s per depth)\n",
              wr.final_working_depth, cave.depth(),
              static_cast<long long>(wr.total_reanchors),
              wr.reanchors_by_depth.to_string().c_str());
  return wr.complete && wr.all_at_root ? 0 : 1;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) { return bfdn::run(argc, argv); }
