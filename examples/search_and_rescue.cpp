// Search and rescue under unreliable hardware: a team sweeps a branching
// cave system while an adversarial environment (mud, radio loss, stuck
// tracks) freezes arbitrary robots at arbitrary times — the break-down
// model of Section 4.2 (Proposition 7).
//
//   $ ./search_and_rescue --robots 10 --availability 0.6
//
// The cave is a deep comb-like tree; the schedule blocks each robot
// independently per round with the given unavailability. The example
// reports how much *allowed* movement the team consumed before full
// coverage, against Proposition 7's 2n/k + D^2(log k + 3) budget.
#include <cstdio>

#include "adversarial/schedules.h"
#include "core/bfdn.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "support/cli.h"

namespace bfdn {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("search_and_rescue",
                "cave sweep with randomly failing robots");
  cli.add_int("robots", 10, "team size");
  cli.add_int("galleries", 40, "main-gallery length (spine nodes)");
  cli.add_int("side", 25, "side-passage length per gallery node");
  cli.add_double("availability", 0.6,
                 "per-robot per-round probability of being operational");
  cli.add_int("seed", 99, "schedule seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto k = static_cast<std::int32_t>(cli.get_int("robots"));
  const double availability = cli.get_double("availability");
  const Tree cave =
      make_comb(static_cast<std::int32_t>(cli.get_int("galleries")),
                static_cast<std::int32_t>(cli.get_int("side")));
  std::printf("cave system : %s\n", cave.summary().c_str());

  const double budget =
      proposition7_bound(cave.num_nodes(), cave.depth(), k);
  const auto horizon = static_cast<std::int64_t>(
                           budget * static_cast<double>(k) /
                           std::max(availability, 0.05) * 3) +
                       64;
  auto schedule = make_random_schedule(
      horizon, k, availability,
      static_cast<std::uint64_t>(cli.get_int("seed")));

  BfdnAlgorithm algorithm(k);
  RunConfig config;
  config.num_robots = k;
  config.schedule = schedule.get();
  config.max_rounds = horizon + 8;
  const RunResult result = run_exploration(cave, algorithm, config);

  std::int64_t moves = 0;
  for (auto m : result.robot_moves) moves += m;
  std::printf("team        : %d robots, %.0f%% per-round availability\n",
              k, availability * 100.0);
  std::printf("rounds      : %lld wall-clock\n",
              static_cast<long long>(result.rounds));
  std::printf("coverage    : %s\n",
              result.complete ? "every passage visited"
                              : "INCOMPLETE (schedule exhausted)");
  std::printf("moves       : %lld performed out of %lld allowed "
              "(A(M) used = %.1f)\n",
              static_cast<long long>(moves),
              static_cast<long long>(schedule->granted_moves()),
              schedule->average_allowed());
  std::printf("Prop. 7     : budget %.1f allowed-distance per robot; "
              "used/budget = %.3f\n",
              budget, schedule->average_allowed() / budget);
  return result.complete ? 0 : 1;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) { return bfdn::run(argc, argv); }
