// Warehouse sweep: a robot fleet inventories every aisle of a warehouse
// whose shelving racks are rectangular obstacles — the grid-graph
// setting of Section 4.3 (Proposition 9).
//
//   $ ./warehouse_sweep --width 36 --height 20 --robots 12
//
// The fleet starts at the dock (cell 0,0), knows only its distance to
// the dock (e.g. from dead-reckoning), and must traverse every corridor
// edge. The example prints the floor plan, runs the graph variant of
// BFDN, and reports coverage, the BFS-tree/closed-edge split, and the
// Proposition 9 budget.
#include <cstdio>

#include "graph/grid_world.h"
#include "graphexp/graph_bfdn.h"
#include "support/cli.h"

namespace bfdn {
namespace {

GridWorld build_warehouse(std::int32_t width, std::int32_t height) {
  // Regular racks: width-4 blocks with one-cell corridors between them,
  // a cross-aisle in the middle of the floor.
  std::vector<Rect> racks;
  const std::int32_t rack_w = 3;
  const std::int32_t rack_h = 4;
  for (std::int32_t x = 2; x + rack_w < width; x += rack_w + 2) {
    for (std::int32_t y = 2; y + rack_h < height; y += rack_h + 2) {
      racks.push_back(Rect{x, y, x + rack_w - 1, y + rack_h - 1});
    }
  }
  return GridWorld(width, height, std::move(racks));
}

int run(int argc, const char* const* argv) {
  CliParser cli("warehouse_sweep",
                "inventory sweep of a racked warehouse floor");
  cli.add_int("width", 36, "floor width in cells");
  cli.add_int("height", 20, "floor height in cells");
  cli.add_int("robots", 12, "fleet size");
  cli.add_bool("map", true, "print the floor plan");
  if (!cli.parse(argc, argv)) return 0;

  const GridWorld warehouse =
      build_warehouse(static_cast<std::int32_t>(cli.get_int("width")),
                      static_cast<std::int32_t>(cli.get_int("height")));
  const Graph& graph = warehouse.graph();
  const auto k = static_cast<std::int32_t>(cli.get_int("robots"));

  if (cli.get_bool("map")) {
    std::printf("floor plan (O = dock, # = rack):\n%s\n",
                warehouse.render().c_str());
  }
  std::printf("corridor graph : %s\n", graph.summary().c_str());
  std::printf("manhattan dist : %s (distance oracle works either way)\n",
              warehouse.distances_are_manhattan() ? "yes" : "no");

  const GraphExplorationResult result = run_graph_bfdn(graph, k);
  const double budget = proposition9_bound(graph.num_edges(),
                                           graph.radius(),
                                           graph.max_degree(), k);
  std::printf("fleet          : %d robots\n", k);
  std::printf("rounds         : %lld (Proposition 9 budget %.0f, ratio "
              "%.3f)\n",
              static_cast<long long>(result.rounds), budget,
              static_cast<double>(result.rounds) / budget);
  std::printf("coverage       : %s; fleet back at dock: %s\n",
              result.complete ? "every corridor traversed" : "INCOMPLETE",
              result.all_at_origin ? "yes" : "no");
  std::printf("edge split     : %lld BFS-tree edges kept, %lld shortcut "
              "edges closed after one inspection\n",
              static_cast<long long>(result.tree_edges),
              static_cast<long long>(result.closed_edges));
  return result.complete ? 0 : 1;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) { return bfdn::run(argc, argv); }
