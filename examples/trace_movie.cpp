// Trace movie: watch BFDN explore a small tree round by round — the
// terminal counterpart of the Python demo the paper's acknowledgements
// mention. Prints the tree with robot markers after each round, then a
// per-robot summary, and (optionally) a Graphviz DOT of the final
// state.
//
//   $ ./trace_movie --robots 3 --nodes 18 --every 1
//   $ ./trace_movie --dot > final.dot && dot -Tsvg final.dot -o run.svg
#include <cstdio>

#include "core/bfdn.h"
#include "graph/dot.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "sim/render.h"
#include "support/cli.h"

namespace bfdn {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("trace_movie", "round-by-round view of a BFDN run");
  cli.add_int("robots", 3, "team size");
  cli.add_int("nodes", 18, "tree size (keep small; one line per node)");
  cli.add_int("depth", 4, "tree depth");
  cli.add_int("seed", 7, "tree seed");
  cli.add_int("every", 1, "print every Nth round");
  cli.add_bool("dot", false,
               "print final Graphviz DOT instead of the movie");
  if (!cli.parse(argc, argv)) return 0;

  const auto k = static_cast<std::int32_t>(cli.get_int("robots"));
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  const Tree tree = make_tree_with_depth(
      cli.get_int("nodes"), static_cast<std::int32_t>(cli.get_int("depth")),
      rng);

  BfdnAlgorithm algorithm(k);
  std::vector<TraceFrame> trace;
  RunConfig config;
  config.num_robots = k;
  config.trace = &trace;
  const RunResult result = run_exploration(tree, algorithm, config);

  if (cli.get_bool("dot")) {
    std::vector<char> explored(static_cast<std::size_t>(tree.num_nodes()),
                               1);  // run finished: everything explored
    const std::vector<NodeId> home(static_cast<std::size_t>(k),
                                   tree.root());
    std::fputs(exploration_to_dot(tree, explored, home).c_str(), stdout);
    return 0;
  }

  std::printf("tree: %s, %d robots\n\n", tree.summary().c_str(), k);
  const auto every = std::max<std::int64_t>(1, cli.get_int("every"));
  for (const TraceFrame& frame : trace) {
    if (frame.round % every != 0 &&
        frame.round != static_cast<std::int64_t>(trace.size())) {
      continue;
    }
    std::fputs(render_trace_frame(tree, frame).c_str(), stdout);
    std::fputc('\n', stdout);
  }
  std::printf("finished in %lld rounds (complete: %s)\n\n",
              static_cast<long long>(result.rounds),
              result.complete ? "yes" : "no");
  const auto summaries = summarize_trace(tree, trace);
  for (std::size_t r = 0; r < summaries.size(); ++r) {
    std::printf("robot %zu: %lld moves, deepest depth %d, %lld rounds "
                "at the root\n",
                r, static_cast<long long>(summaries[r].moves),
                summaries[r].deepest,
                static_cast<long long>(summaries[r].rounds_at_root));
  }
  return result.complete ? 0 : 1;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) { return bfdn::run(argc, argv); }
