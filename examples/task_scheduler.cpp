// Online task scheduling — the resource-allocation corollary of
// Sections 1 and 3.1. A build farm has k workers and k parallelizable
// jobs whose durations are unknown upfront; every time a job finishes,
// its workers must be reassigned online. Each reassignment has a cost
// (cache warm-up, checkout, container spin-up), so the scheduler wants
// few switches AND a short makespan.
//
//   $ ./task_scheduler --workers 64 --shape heavy-tail
//
// The least-crowded rule (the urn-game player strategy of Theorem 3)
// guarantees at most k log k + 2k switches regardless of the workload;
// the example compares it against naive rules on the chosen workload.
#include <cstdio>

#include "game/allocation.h"
#include "support/cli.h"
#include "support/table.h"

namespace bfdn {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("task_scheduler",
                "build-farm scheduling with unknown job lengths");
  cli.add_int("workers", 64, "number of workers (= number of jobs)");
  cli.add_string("shape", "heavy-tail",
                 "workload: uniform | heavy-tail | one-giant | random");
  cli.add_int("seed", 2024, "workload seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto k = static_cast<std::int32_t>(cli.get_int("workers"));
  const std::string shape = cli.get_string("shape");
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

  std::vector<std::int64_t> jobs(static_cast<std::size_t>(k), 0);
  for (std::int32_t j = 0; j < k; ++j) {
    auto& w = jobs[static_cast<std::size_t>(j)];
    if (shape == "uniform") {
      w = 120;
    } else if (shape == "heavy-tail") {
      const auto base = static_cast<std::int64_t>(rng.next_below(12));
      w = 1 + base * base * base;  // a few huge jobs, many tiny ones
    } else if (shape == "one-giant") {
      w = j == 0 ? 200 * k : 2;
    } else if (shape == "random") {
      w = 1 + static_cast<std::int64_t>(rng.next_below(500));
    } else {
      std::fprintf(stderr, "unknown --shape %s\n", shape.c_str());
      return 1;
    }
  }
  std::int64_t total = 0;
  for (auto w : jobs) total += w;
  std::printf("farm     : %d workers, %d jobs (%s), %lld total work "
              "units\n",
              k, k, shape.c_str(), static_cast<long long>(total));
  std::printf("ideal    : makespan >= ceil(total/k) = %lld rounds\n",
              static_cast<long long>((total + k - 1) / k));
  std::printf("Theorem 3: least-crowded reassignments <= k log k + 2k = "
              "%.0f\n\n",
              allocation_switch_bound(k));

  Table table({"rule", "switches", "makespan", "idle_worker_rounds"});
  for (ReassignRule rule :
       {ReassignRule::kLeastCrowded, ReassignRule::kRandom,
        ReassignRule::kFirstUnfinished, ReassignRule::kMostCrowded}) {
    const AllocationResult result = simulate_allocation(jobs, rule, 17);
    table.add_row({reassign_rule_name(rule), cell(result.switches),
                   cell(result.rounds), cell(result.idle_worker_rounds)});
  }
  std::fputs(table.to_console().c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) { return bfdn::run(argc, argv); }
