// E15 (extension) — empirical competitive-ratio estimates. Section 1
// defines the competitive ratio as max over (n, D) and trees of
// Runtime / (n/k + D); CTE's is O(k/log k) and BFDN's is O(k) in the
// worst case (but with the 2n/k + D^2 log k additive form). This bench
// estimates the max over a diverse instance pool for each k, giving the
// empirical growth curves the theory brackets.
#include <algorithm>
#include <cstdio>
#include <map>

#include "exp/campaign.h"
#include "graph/generators.h"
#include "support/cli.h"
#include "support/table.h"

namespace bfdn {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("bench_competitive",
                "empirical max of rounds/(n/k + D) per algorithm and k");
  cli.add_int("scale", 1200, "approximate node count of the pool trees");
  cli.add_int("seed", 151515, "pool seed");
  cli.add_int("threads", 0, "worker threads (0 = hardware)");
  cli.add_bool("csv", false, "emit CSV");
  if (!cli.parse(argc, argv)) return 0;

  const auto scale = cli.get_int("scale");
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

  Campaign campaign;
  for (auto& [name, tree] :
       make_tree_zoo(scale, static_cast<std::uint64_t>(
                                cli.get_int("seed")))) {
    campaign.add_tree(name, std::move(tree));
  }
  // Extra depth-stressed instances (the ratio peaks on them).
  for (const std::int32_t depth : {30, 100, 300}) {
    Rng child = rng.split();
    campaign.add_tree("fixed_d" + std::to_string(depth),
                      make_tree_with_depth(scale, depth, child));
  }
  for (const std::int32_t k : {2, 4, 8, 16, 32, 64, 128}) {
    campaign.add_team_size(k);
  }
  for (AlgorithmKind kind :
       {AlgorithmKind::kBfdn, AlgorithmKind::kBfdnShortcut,
        AlgorithmKind::kCte, AlgorithmKind::kDnSwarm,
        AlgorithmKind::kBfdnEll2}) {
    campaign.add_algorithm(kind);
  }

  const auto results =
      campaign.run(static_cast<std::int32_t>(cli.get_int("threads")));

  // max ratio per (algorithm, k), plus the witness tree.
  struct Peak {
    double ratio = 0;
    std::string witness;
  };
  std::map<std::pair<AlgorithmKind, std::int32_t>, Peak> peaks;
  for (const CellResult& cell : results) {
    if (!cell.complete) {
      std::fprintf(stderr, "FATAL: incomplete cell %s\n",
                   cell.tree_name.c_str());
      return 1;
    }
    Peak& peak = peaks[{cell.algorithm, cell.k}];
    if (cell.ratio_vs_opt > peak.ratio) {
      peak.ratio = cell.ratio_vs_opt;
      peak.witness = cell.tree_name;
    }
  }

  Table table({"k", "BFDN", "BFDN+shortcut", "CTE", "DN-swarm", "BFDN_2",
               "worst_tree_for_BFDN"});
  for (const std::int32_t k : {2, 4, 8, 16, 32, 64, 128}) {
    table.add_row(
        {cell(k),
         cell(peaks[{AlgorithmKind::kBfdn, k}].ratio, 2),
         cell(peaks[{AlgorithmKind::kBfdnShortcut, k}].ratio, 2),
         cell(peaks[{AlgorithmKind::kCte, k}].ratio, 2),
         cell(peaks[{AlgorithmKind::kDnSwarm, k}].ratio, 2),
         cell(peaks[{AlgorithmKind::kBfdnEll2, k}].ratio, 2),
         peaks[{AlgorithmKind::kBfdn, k}].witness});
  }
  std::fputs("# E15 (competitive ratio, empirical): max over instance "
             "pool of rounds/(n/k + D)\n",
             stdout);
  std::fputs(cli.get_bool("csv") ? table.to_csv().c_str()
                                 : table.to_console().c_str(),
             stdout);
  return 0;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) { return bfdn::run(argc, argv); }
