// E7 — Proposition 7: adversarial robot break-downs. For a zoo of
// break-down schedules, the average allowed distance A(M) consumed by
// the time exploration completes, against the 2n/k + D^2(log k + 3)
// budget the proposition says suffices.
#include <cstdio>

#include "adversarial/schedules.h"
#include "core/bfdn.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "support/cli.h"
#include "support/table.h"

namespace bfdn {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("bench_breakdowns",
                "Proposition 7: A(M) consumed at completion vs budget, "
                "per break-down schedule");
  cli.add_int("n", 3000, "tree size");
  cli.add_int("depth", 20, "tree depth");
  cli.add_int("k", 16, "robots");
  cli.add_int("seed", 70707, "tree seed");
  cli.add_bool("csv", false, "emit CSV");
  if (!cli.parse(argc, argv)) return 0;

  const auto k = static_cast<std::int32_t>(cli.get_int("k"));
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  const Tree tree = make_tree_with_depth(
      cli.get_int("n"), static_cast<std::int32_t>(cli.get_int("depth")),
      rng);
  const double budget =
      proposition7_bound(tree.num_nodes(), tree.depth(), k);
  // Horizon with ample slack for the sparsest schedule.
  const auto horizon =
      static_cast<std::int64_t>(budget * static_cast<double>(k) * 4) + 64;

  std::vector<std::unique_ptr<FiniteSchedule>> schedules;
  schedules.push_back(make_full_schedule(horizon, k));
  schedules.push_back(make_round_robin_schedule(horizon, k));
  schedules.push_back(make_random_schedule(horizon, k, 0.75, 1));
  schedules.push_back(make_random_schedule(horizon, k, 0.25, 2));
  schedules.push_back(make_burst_schedule(horizon, k, 16));
  schedules.push_back(make_rolling_outage_schedule(horizon, k, 8));

  Table table({"schedule", "rounds", "A(M)_used", "budget", "used/budget",
               "robot_moves", "complete"});
  for (auto& schedule : schedules) {
    BfdnAlgorithm algo(k);
    RunConfig config;
    config.num_robots = k;
    config.schedule = schedule.get();
    config.max_rounds = horizon + 8;
    const RunResult result = run_exploration(tree, algo, config);
    std::int64_t moves = 0;
    for (auto m : result.robot_moves) moves += m;
    table.add_row({schedule->name(), cell(result.rounds),
                   cell(schedule->average_allowed(), 1), cell(budget, 1),
                   cell(schedule->average_allowed() / budget, 3),
                   cell(moves), cell_bool(result.complete)});
  }
  std::printf("# E7 (Proposition 7): %s, k = %d\n",
              tree.summary().c_str(), k);
  std::fputs(cli.get_bool("csv") ? table.to_csv().c_str()
                                 : table.to_console().c_str(),
             stdout);
  return 0;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) { return bfdn::run(argc, argv); }
