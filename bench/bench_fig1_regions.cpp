// E4 — Figure 1 (analytic): the regions of the (n, D) plane where each
// algorithm's runtime *guarantee* is smallest, evaluated from the
// Appendix A formulas at a fixed k. Rendered as an ASCII map over a
// log-log grid (x: log10 n, y: log10 D), mirroring the paper's figure:
//   C = CTE, Y = Yo*, B = BFDN, L = BFDN_l, . = no tree (n <= D).
//
// Shape to check against the paper: CTE owns the deep band near n ~ D,
// BFDN owns the shallow region D^2 log^2 k <= n, BFDN_l a wedge between
// them, Yo* a sliver for moderate n and depth (it fades for n >= e^k).
#include <cmath>
#include <cstdio>

#include "baselines/guarantees.h"
#include "support/cli.h"
#include "support/table.h"

namespace bfdn {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("bench_fig1_regions",
                "Figure 1: analytic winner map over (n, D) at fixed k");
  cli.add_int("k", 1024, "team size the guarantees are evaluated at");
  cli.add_int("max_ell", 4, "largest ell tried for BFDN_l");
  cli.add_int("cols", 60, "grid width (log10 n resolution)");
  cli.add_int("rows", 24, "grid height (log10 D resolution)");
  cli.add_double("max_log10_n", 18.0, "right edge of the map");
  if (!cli.parse(argc, argv)) return 0;

  const double k = static_cast<double>(cli.get_int("k"));
  const auto max_ell = static_cast<std::int32_t>(cli.get_int("max_ell"));
  const auto cols = static_cast<std::int32_t>(cli.get_int("cols"));
  const auto rows = static_cast<std::int32_t>(cli.get_int("rows"));
  const double max_log_n = cli.get_double("max_log10_n");
  const double max_log_d = max_log_n;  // square log-log domain

  std::printf("# E4 (Figure 1, analytic): winner of the runtime "
              "guarantees, k = %.0f\n",
              k);
  std::printf("#   C = CTE   Y = Yo*   B = BFDN   L = BFDN_l (ell <= %d)"
              "   . = no tree (n <= D)\n",
              max_ell);
  std::printf("# y: log10(D) from %.1f (top) to 0 (bottom); x: log10(n) "
              "0..%.1f\n\n",
              max_log_d, max_log_n);

  for (std::int32_t r = rows - 1; r >= 0; --r) {
    const double log_d = max_log_d * (r + 0.5) / rows;
    std::printf("%5.1f |", log_d);
    for (std::int32_t c = 0; c < cols; ++c) {
      const double log_n = max_log_n * (c + 0.5) / cols;
      if (log_n <= log_d) {
        std::putchar('.');
        continue;
      }
      const double n = std::pow(10.0, log_n);
      const double d = std::pow(10.0, log_d);
      const std::string winner = fig1_winner(n, d, k, max_ell);
      char mark = '?';
      if (winner == "CTE") mark = 'C';
      if (winner == "Yo*") mark = 'Y';
      if (winner == "BFDN") mark = 'B';
      if (winner == "BFDN_l") mark = 'L';
      std::putchar(mark);
    }
    std::putchar('\n');
  }
  std::printf("      +");
  for (std::int32_t c = 0; c < cols; ++c) std::putchar('-');
  std::printf("\n       log10(n) -> 0..%.1f\n\n", max_log_n);

  // The paper's closed-form pairwise thresholds at sample points.
  Table thresholds({"point (n, D)", "rule", "holds", "formulas_agree"});
  struct Sample {
    double n, d;
  };
  const std::vector<Sample> samples = {{1e12, 1e2}, {1e6, 1e4},
                                       {1e9, 1e3},  {1e15, 1e5}};
  for (const auto& s : samples) {
    const bool rule = bfdn_beats_cte_rule(s.n, s.d, k);
    const bool eval =
        guarantee_bfdn(s.n, s.d, k) < guarantee_cte(s.n, s.d, k);
    thresholds.add_row(
        {"n=1e" + cell(std::int64_t(std::log10(s.n))) + " D=1e" +
             cell(std::int64_t(std::log10(s.d))),
         "BFDN<CTE iff D^2 log^2 k <= n", cell_bool(rule),
         cell_bool(rule == eval)});
  }
  std::fputs("# Appendix A pairwise rule vs direct evaluation\n", stdout);
  std::fputs(thresholds.to_console().c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) { return bfdn::run(argc, argv); }
