// E9 — Theorem 10: the recursive BFDN_l on deep trees. Sweeps ell over
// trees whose depth ranges from sqrt(n)-ish to near-path, comparing
// measured rounds and the Theorem 10 bound against plain BFDN
// (Theorem 1). Shape: for D >> sqrt(n/k) the ell >= 2 bound undercuts
// the ell = 1 / plain bound, and measured rounds stay below their
// respective bounds everywhere.
#include <cstdio>

#include "core/bfdn.h"
#include "graph/generators.h"
#include "recursive/bfdn_ell.h"
#include "sim/engine.h"
#include "support/cli.h"
#include "support/table.h"

namespace bfdn {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("bench_recursive",
                "Theorem 10: BFDN_l vs BFDN on trees of growing depth");
  cli.add_int("n", 6000, "tree size");
  cli.add_int("k", 64, "robots");
  cli.add_int("seed", 90909, "tree seed");
  cli.add_bool("csv", false, "emit CSV");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = cli.get_int("n");
  const auto k = static_cast<std::int32_t>(cli.get_int("k"));
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

  Table table({"D", "algo", "rounds", "bound", "ratio", "phases"});
  for (const std::int32_t depth :
       {20, 80, 300, 1000, static_cast<std::int32_t>(n / 2)}) {
    Rng child = rng.split();
    const Tree tree = make_tree_with_depth(n, depth, child);
    RunConfig config;
    config.num_robots = k;

    BfdnAlgorithm plain(k);
    const RunResult r_plain = run_exploration(tree, plain, config);
    const double bound_plain = theorem1_bound(tree.num_nodes(), depth,
                                              tree.max_degree(), k);
    table.add_row({cell(std::int64_t{depth}), "BFDN", cell(r_plain.rounds),
                   cell(bound_plain, 0),
                   cell(static_cast<double>(r_plain.rounds) / bound_plain,
                        3),
                   "-"});
    for (std::int32_t ell : {1, 2, 3}) {
      BfdnEllAlgorithm algo(k, ell);
      const RunResult result = run_exploration(tree, algo, config);
      if (!result.complete) {
        std::fprintf(stderr, "FATAL: BFDN_%d incomplete at D=%d\n", ell,
                     depth);
        return 1;
      }
      const double bound = theorem10_bound(tree.num_nodes(), depth,
                                           tree.max_degree(), k, ell);
      table.add_row(
          {cell(std::int64_t{depth}), "BFDN_" + std::to_string(ell),
           cell(result.rounds), cell(bound, 0),
           cell(static_cast<double>(result.rounds) / bound, 3),
           cell(std::int64_t{algo.phases_started()})});
    }
  }
  std::printf("# E9 (Theorem 10): n = %lld, k = %d\n",
              static_cast<long long>(n), k);
  std::fputs(cli.get_bool("csv") ? table.to_csv().c_str()
                                 : table.to_console().c_str(),
             stdout);
  return 0;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) { return bfdn::run(argc, argv); }
