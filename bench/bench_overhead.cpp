// E10 — Competitive overhead: T - 2n/k as a function of D, the lens of
// the paper's comparison with Brass et al. [1]. BFDN's overhead must
// track D^2 log k; CTE's measured overhead is also shown, and the
// Brass-et-al guarantee term (D + k)^k is printed (as log10) to expose
// just how much bigger its additive term is for the same parameters.
#include <cmath>
#include <cstdio>

#include "baselines/brass.h"
#include "baselines/cte.h"
#include "core/bfdn.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "support/cli.h"
#include "support/table.h"

namespace bfdn {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("bench_overhead",
                "Competitive overhead T - 2n/k vs depth (BFDN vs CTE vs "
                "the Brass et al. additive term)");
  cli.add_int("n", 8000, "tree size");
  cli.add_int("k", 16, "robots");
  cli.add_int("reps", 3, "trees per depth (averaged)");
  cli.add_int("seed", 101010, "tree seed");
  cli.add_bool("csv", false, "emit CSV");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = cli.get_int("n");
  const auto k = static_cast<std::int32_t>(cli.get_int("k"));
  const auto reps = cli.get_int("reps");
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

  Table table({"D", "bfdn_overhead", "cte_overhead", "brass_overhead",
               "D^2*logk", "log10_brass_GUARANTEE", "bfdn_rounds",
               "cte_rounds"});
  for (const std::int32_t depth : {5, 10, 20, 40, 80, 160}) {
    double bfdn_overhead = 0;
    double cte_overhead = 0;
    double brass_overhead = 0;
    double bfdn_rounds = 0;
    double cte_rounds = 0;
    for (std::int64_t rep = 0; rep < reps; ++rep) {
      Rng child = rng.split();
      const Tree tree = make_tree_with_depth(n, depth, child);
      RunConfig config;
      config.num_robots = k;
      BfdnAlgorithm bfdn_algo(k);
      const RunResult rb = run_exploration(tree, bfdn_algo, config);
      CteAlgorithm cte_algo(tree, k);
      const RunResult rc = run_exploration(tree, cte_algo, config);
      BrassAlgorithm brass_algo(k);
      const RunResult rr = run_exploration(tree, brass_algo, config);
      const double base = 2.0 * static_cast<double>(n) / k;
      bfdn_overhead += static_cast<double>(rb.rounds) - base;
      cte_overhead += static_cast<double>(rc.rounds) - base;
      brass_overhead += static_cast<double>(rr.rounds) - base;
      bfdn_rounds += static_cast<double>(rb.rounds);
      cte_rounds += static_cast<double>(rc.rounds);
    }
    const double scale = 1.0 / static_cast<double>(reps);
    // log10((D + k)^k) = k log10(D + k): the additive term of [1]'s
    // GUARANTEE — compare with its measured behaviour two columns left.
    const double brass_log10 =
        static_cast<double>(k) * std::log10(static_cast<double>(depth + k));
    table.add_row(
        {cell(std::int64_t{depth}), cell(bfdn_overhead * scale, 1),
         cell(cte_overhead * scale, 1), cell(brass_overhead * scale, 1),
         cell(static_cast<double>(depth) * depth * std::log(double(k)), 0),
         cell(brass_log10, 1), cell(bfdn_rounds * scale, 0),
         cell(cte_rounds * scale, 0)});
  }
  std::printf("# E10 (overhead): n = %lld, k = %d; paper claims BFDN "
              "overhead O(D^2 log k) vs [1]'s O((D+k)^k)\n",
              static_cast<long long>(n), k);
  std::fputs(cli.get_bool("csv") ? table.to_csv().c_str()
                                 : table.to_console().c_str(),
             stdout);
  return 0;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) { return bfdn::run(argc, argv); }
