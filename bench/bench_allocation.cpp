// E11 — The resource-allocation corollary (Sections 1 and 3.1): with k
// workers and k parallelizable tasks of unknown length, reassigning idle
// workers to the least-crowded unfinished task keeps total reassignments
// at most k log k + 2k. The table sweeps k and workload shapes; the
// ablation columns show the alternative rules losing either the switch
// bound or the makespan.
#include <cstdio>

#include "game/allocation.h"
#include "support/cli.h"
#include "support/table.h"

namespace bfdn {
namespace {

std::vector<std::int64_t> make_workload(const std::string& shape,
                                        std::int32_t k, Rng& rng) {
  std::vector<std::int64_t> work(static_cast<std::size_t>(k), 0);
  for (std::int32_t t = 0; t < k; ++t) {
    auto& w = work[static_cast<std::size_t>(t)];
    if (shape == "uniform") {
      w = 200;
    } else if (shape == "random") {
      w = static_cast<std::int64_t>(rng.next_below(400));
    } else if (shape == "heavy-tail") {
      const auto base = static_cast<std::int64_t>(rng.next_below(10));
      w = 1 + base * base * base;
    } else if (shape == "one-giant") {
      w = t == 0 ? 400 * k : 1;
    } else if (shape == "geometric") {
      w = std::int64_t{1} << std::min<std::int32_t>(t % 12, 12);
    }
  }
  return work;
}

int run(int argc, const char* const* argv) {
  CliParser cli("bench_allocation",
                "k workers / k tasks: switches under the least-crowded "
                "rule vs the k log k + 2k bound");
  cli.add_int("seed", 111111, "workload seed");
  cli.add_bool("csv", false, "emit CSV");
  if (!cli.parse(argc, argv)) return 0;
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

  Table table({"k", "workload", "bound", "least_crowded", "random",
               "first_unfinished", "most_crowded", "lc_makespan",
               "ideal_makespan"});
  for (std::int32_t k : {8, 32, 128, 512}) {
    for (const std::string shape :
         {"uniform", "random", "heavy-tail", "one-giant", "geometric"}) {
      Rng child = rng.split();
      const auto work = make_workload(shape, k, child);
      std::int64_t total = 0;
      for (auto w : work) total += w;
      const auto lc =
          simulate_allocation(work, ReassignRule::kLeastCrowded);
      const auto rnd = simulate_allocation(work, ReassignRule::kRandom, 3);
      const auto first =
          simulate_allocation(work, ReassignRule::kFirstUnfinished);
      const auto most =
          simulate_allocation(work, ReassignRule::kMostCrowded);
      table.add_row({cell(k), shape, cell(allocation_switch_bound(k), 0),
                     cell(lc.switches), cell(rnd.switches),
                     cell(first.switches), cell(most.switches),
                     cell(lc.rounds), cell((total + k - 1) / k)});
    }
  }
  std::fputs("# E11 (resource allocation): switch counts per rule\n",
             stdout);
  std::fputs(cli.get_bool("csv") ? table.to_csv().c_str()
                                 : table.to_console().c_str(),
             stdout);
  return 0;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) { return bfdn::run(argc, argv); }
