// E1 — Theorem 1 validation: measured BFDN rounds against the
// 2n/k + D^2(min(log k, log Delta) + 3) guarantee, the offline DFS-split
// schedule and the offline lower bound max(2n/k, 2D), across the tree
// zoo and a sweep of robot counts.
//
// The paper is theory-only; this bench produces the table its Theorem 1
// implies (see EXPERIMENTS.md, E1). Shape to check: measured <= bound on
// every row, and measured within a small factor of the offline lower
// bound whenever D^2 log k << n/k.
#include <cstdio>

#include "baselines/offline.h"
#include "core/bfdn.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "support/cli.h"
#include "support/table.h"

namespace bfdn {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("bench_theorem1",
                "Theorem 1: BFDN runtime vs bound and offline references");
  cli.add_int("scale", 2000, "approximate node count of the zoo trees");
  cli.add_int("seed", 20240623, "zoo generation seed");
  cli.add_bool("csv", false, "emit CSV instead of an aligned table");
  if (!cli.parse(argc, argv)) return 0;

  const auto scale = cli.get_int("scale");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  Table table({"tree", "n", "D", "Delta", "k", "rounds", "shortcut",
               "bound", "ratio", "offline_split", "lower_bound",
               "vs_lower"});
  for (const auto& [name, tree] : make_tree_zoo(scale, seed)) {
    for (std::int32_t k : {2, 8, 32, 128}) {
      RunConfig config;
      config.num_robots = k;
      BfdnAlgorithm algo(k);
      const RunResult result = run_exploration(tree, algo, config);
      BfdnOptions shortcut_options;
      shortcut_options.shortcut_reanchor = true;
      BfdnAlgorithm shortcut_algo(k, shortcut_options);
      const RunResult shortcut_result =
          run_exploration(tree, shortcut_algo, config);
      if (!result.complete || !result.all_at_root ||
          !shortcut_result.complete) {
        std::fprintf(stderr, "FATAL: %s k=%d did not complete\n",
                     name.c_str(), k);
        return 1;
      }
      const double bound = theorem1_bound(tree.num_nodes(), tree.depth(),
                                          tree.max_degree(), k);
      const double lower =
          offline_lower_bound(tree.num_nodes(), tree.depth(), k);
      const OfflineSplitPlan plan = offline_dfs_split(tree, k);
      table.add_row({name, cell(tree.num_nodes()),
                     cell(std::int64_t{tree.depth()}),
                     cell(std::int64_t{tree.max_degree()}), cell(k),
                     cell(result.rounds), cell(shortcut_result.rounds),
                     cell(bound, 0),
                     cell(static_cast<double>(result.rounds) / bound, 3),
                     cell(plan.rounds), cell(lower, 0),
                     cell(static_cast<double>(result.rounds) / lower, 2)});
    }
  }
  std::fputs("# E1 (Theorem 1): BFDN measured rounds vs guarantee\n",
             stdout);
  std::fputs(cli.get_bool("csv") ? table.to_csv().c_str()
                                 : table.to_console().c_str(),
             stdout);
  return 0;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) { return bfdn::run(argc, argv); }
