// E22 — sharded fleet bench: what the consistent-hash router buys.
//
// Three measured sections, all in-process (N ServiceServer shards
// behind one RouterServer, loopback ServiceClient workers — the same
// transport bfdn_load drives):
//
//   scaling: warm aggregate req/s through the router for fleets of
//     1, 2 and 4 shards over the same Zipf request mix. Per-shard
//     cache capacity is deliberately smaller than the request
//     vocabulary, so the solo "fleet" thrashes its LRU and recomputes
//     the Zipf tail forever, while the 4-shard fleet's aggregate
//     capacity holds the whole working set. This is the honest
//     single-box version of why a cache tier shards: the win measured
//     here is aggregate cache memory (and holds at any core count);
//     on real fleets CPU parallelism multiplies on top.
//   hot_tail: p50/p95/p99 latency of one Zipf-head key under
//     background compute load, replicas=1 vs replicas=2 — what
//     spreading the head over two owners does to the tail while both
//     shards keep computing tail misses. Report-only (no gate): on a
//     one-core host both arms share the CPU and the spread is noise.
//   ship_warmup: wall time to warm an empty shard by ship_segment
//     (stream the source's live set as one segment image, replayed
//     through the recovery scan) vs recomputing the same vocabulary
//     from scratch.
//
// Gates (a failed gate is exit status 1, visible in CI):
//   full mode:  scaling >= 1.7x at 2 shards and >= 3.0x at 4 shards,
//               ship warm-up >= 5x faster than recompute;
//   --smoke:    >= 1.3x / 2.0x, ship >= 3x (small counts, noisy CI).
// Output is one JSON document on stdout (BENCH_cluster.json).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "support/check.h"
#include "support/cli.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/strings.h"

namespace bfdn {
namespace {

/// Deterministic request vocabulary indexed by Zipf rank. Compute-heavy
/// on a miss (the whole point: a thrashed cache pays this, a warm fleet
/// does not).
ServiceRequest make_request(std::int64_t rank, std::int64_t nodes) {
  static constexpr const char* kFamilies[] = {"random", "caterpillar",
                                              "spider", "fixed-depth"};
  ServiceRequest request;
  request.id = str_format("r%lld", static_cast<long long>(rank));
  request.recipe.family = kFamilies[rank % 4];
  request.recipe.nodes = nodes;
  request.recipe.depth = static_cast<std::int32_t>(
      std::max<std::int64_t>(4, std::min<std::int64_t>(40, nodes / 16)));
  request.recipe.arms =
      request.recipe.family == std::string("spider") ? 8 : 3;
  request.recipe.seed = static_cast<std::uint64_t>(9000 + rank);
  request.algo.kind = AlgoKind::kBfdn;
  request.algo.k = rank % 2 == 0 ? 8 : 16;
  return request;
}

/// N shards (capacity-limited caches) behind one router.
struct Fleet {
  std::vector<std::unique_ptr<ServiceServer>> shards;
  std::unique_ptr<RouterServer> router;

  Fleet(std::size_t n, std::size_t cache_capacity,
        std::int32_t replicas, std::int64_t hot_threshold) {
    for (std::size_t i = 0; i < n; ++i) {
      ServerOptions options;
      options.port = 0;
      options.threads = 1;
      options.queue_capacity = 256;
      options.cache_capacity = cache_capacity;
      shards.push_back(std::make_unique<ServiceServer>(options));
      shards.back()->start();
    }
    RouterOptions router_options;
    router_options.port = 0;
    for (const auto& shard : shards) {
      router_options.peers.push_back(shard->port());
    }
    router_options.replicas = replicas;
    router_options.hot_threshold = hot_threshold;
    router = std::make_unique<RouterServer>(router_options);
    router->start();
  }

  void drain() {
    router->drain();
    for (auto& shard : shards) shard->drain();
  }
};

struct PhaseResult {
  double wall_s = 0;
  std::int64_t ok = 0;
  std::int64_t errors = 0;
  double rps() const {
    return wall_s > 0 ? static_cast<double>(ok) / wall_s : 0;
  }
};

PhaseResult run_plan(std::uint16_t port, std::int32_t connections,
                     const std::vector<ServiceRequest>& plan) {
  std::vector<PhaseResult> tallies(
      static_cast<std::size_t>(connections));
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (std::int32_t w = 0; w < connections; ++w) {
    workers.emplace_back([&, w] {
      PhaseResult& mine = tallies[static_cast<std::size_t>(w)];
      ServiceClient client(port);
      for (std::size_t i = static_cast<std::size_t>(w); i < plan.size();
           i += static_cast<std::size_t>(connections)) {
        const JsonValue response = client.run(plan[i], 500);
        if (response.get_string("status", "") == "ok") {
          ++mine.ok;
        } else {
          ++mine.errors;
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  PhaseResult total;
  total.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  for (const PhaseResult& t : tallies) {
    total.ok += t.ok;
    total.errors += t.errors;
  }
  return total;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(index, samples.size() - 1)];
}

int run(int argc, const char* const* argv) {
  CliParser cli("bench_cluster",
                "sharded fleet: warm aggregate throughput scaling, "
                "hot-key replication tail latency, ship-vs-recompute "
                "warm-up");
  cli.add_int("vocabulary", 96, "unique requests in the Zipf mix");
  cli.add_int("shard-cache", 32, "per-shard result cache capacity");
  cli.add_int("measure", 384, "Zipf draws in the measured phase");
  cli.add_int("connections", 4, "concurrent client connections");
  cli.add_int("nodes", 40000, "tree size of generated requests");
  cli.add_double("zipf-s", 0.3, "Zipf exponent over request ranks");
  cli.add_int("hot-probes", 48, "timed hot-key requests per tail arm");
  cli.add_int("ship-vocabulary", 48,
              "unique requests in the ship-vs-recompute section");
  cli.add_bool("smoke", false, "small counts + relaxed gates (CI)");
  if (!cli.parse(argc, argv)) return 0;

  const bool smoke = cli.get_bool("smoke");
  const std::int64_t vocabulary =
      smoke ? 48 : std::max<std::int64_t>(8, cli.get_int("vocabulary"));
  const auto shard_cache = static_cast<std::size_t>(
      smoke ? 16 : std::max<std::int64_t>(4, cli.get_int("shard-cache")));
  const std::int64_t measure_n =
      smoke ? 160 : std::max<std::int64_t>(8, cli.get_int("measure"));
  const std::int64_t nodes = smoke ? 4000 : cli.get_int("nodes");
  const auto connections = static_cast<std::int32_t>(
      std::max<std::int64_t>(1, cli.get_int("connections")));
  const std::int64_t hot_probes =
      smoke ? 24 : std::max<std::int64_t>(8, cli.get_int("hot-probes"));
  const std::int64_t ship_vocabulary =
      smoke ? 16
            : std::max<std::int64_t>(4, cli.get_int("ship-vocabulary"));
  const double gate_2x = smoke ? 1.3 : 1.7;
  const double gate_4x = smoke ? 2.0 : 3.0;
  const double gate_ship = smoke ? 3.0 : 5.0;

  // One Zipf plan, reused verbatim for every fleet size.
  std::vector<double> zipf(static_cast<std::size_t>(vocabulary));
  for (std::int64_t r = 0; r < vocabulary; ++r) {
    zipf[static_cast<std::size_t>(r)] =
        1.0 / std::pow(static_cast<double>(r + 1),
                       cli.get_double("zipf-s"));
  }
  Rng rng(22);
  std::vector<ServiceRequest> warm_plan;
  for (std::int64_t r = 0; r < vocabulary; ++r) {
    warm_plan.push_back(make_request(r, nodes));
  }
  std::vector<ServiceRequest> measure_plan;
  for (std::int64_t i = 0; i < measure_n; ++i) {
    const auto rank = static_cast<std::int64_t>(rng.next_weighted(zipf));
    ServiceRequest request = make_request(rank, nodes);
    request.id = str_format("z%lld", static_cast<long long>(i));
    measure_plan.push_back(std::move(request));
  }

  // --- scaling: same plan, fleets of 1 / 2 / 4 shards ---
  struct ScalePoint {
    std::int64_t shards;
    double rps;
    double hit_rate;
    double speedup;
  };
  std::vector<ScalePoint> scaling;
  std::int64_t phase_errors = 0;
  for (const std::int64_t n : {1, 2, 4}) {
    Fleet fleet(static_cast<std::size_t>(n), shard_cache,
                /*replicas=*/2, /*hot_threshold=*/8);
    const PhaseResult warm =
        run_plan(fleet.router->port(), connections, warm_plan);
    const PhaseResult measured =
        run_plan(fleet.router->port(), connections, measure_plan);
    phase_errors += warm.errors + measured.errors;
    std::int64_t hits = 0;
    std::int64_t lookups = 0;
    for (const auto& shard : fleet.shards) {
      const ResultCache::Stats cache = shard->cache_stats();
      hits += cache.hits;
      lookups += cache.hits + cache.misses;
    }
    ScalePoint point;
    point.shards = n;
    point.rps = measured.rps();
    point.hit_rate =
        lookups > 0 ? static_cast<double>(hits) /
                          static_cast<double>(lookups)
                    : 0;
    point.speedup = scaling.empty() || scaling.front().rps <= 0
                        ? 1.0
                        : point.rps / scaling.front().rps;
    scaling.push_back(point);
    fleet.drain();
  }
  const double speedup_2 = scaling[1].speedup;
  const double speedup_4 = scaling[2].speedup;
  const bool scaling_pass = speedup_2 >= gate_2x && speedup_4 >= gate_4x;

  // --- hot_tail: one head key under background load, R=1 vs R=2 ---
  struct TailPoint {
    double p50_ms;
    double p95_ms;
    double p99_ms;
  };
  std::vector<TailPoint> tails;
  for (const std::int32_t replicas : {1, 2}) {
    Fleet fleet(2, shard_cache, replicas, /*hot_threshold=*/2);
    const ServiceRequest hot = make_request(0, nodes);
    ServiceClient foreground(fleet.router->port());
    // Heat the key past the threshold and land it in every replica's
    // cache so the timed probes measure serving, not first-compute.
    for (int i = 0; i < 6; ++i) foreground.run(hot, 500);

    std::atomic<bool> stop{false};
    std::thread background([&fleet, &stop, nodes] {
      ServiceClient client(fleet.router->port());
      std::int64_t next = 1000;  // ranks outside the vocabulary: misses
      while (!stop.load()) {
        client.run(make_request(next++, nodes), 500);
      }
    });
    std::vector<double> samples;
    for (std::int64_t i = 0; i < hot_probes; ++i) {
      const auto start = std::chrono::steady_clock::now();
      const JsonValue response = foreground.run(hot, 500);
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      if (response.get_string("status", "") == "ok") {
        samples.push_back(ms);
      } else {
        ++phase_errors;
      }
    }
    stop.store(true);
    background.join();
    fleet.drain();
    TailPoint point;
    point.p50_ms = percentile(samples, 0.50);
    point.p95_ms = percentile(samples, 0.95);
    point.p99_ms = percentile(samples, 0.99);
    tails.push_back(point);
  }

  // --- ship_warmup: stream the warm set vs recompute it ---
  std::vector<ServiceRequest> ship_plan;
  for (std::int64_t r = 0; r < ship_vocabulary; ++r) {
    ServiceRequest request = make_request(r, nodes);
    request.id = str_format("s%lld", static_cast<long long>(r));
    ship_plan.push_back(std::move(request));
  }
  ServerOptions member_options;
  member_options.threads = 1;
  member_options.queue_capacity = 256;
  member_options.cache_capacity =
      static_cast<std::size_t>(ship_vocabulary) * 2;
  ServiceServer source(member_options);
  source.start();
  const PhaseResult fill =
      run_plan(source.port(), connections, ship_plan);
  phase_errors += fill.errors;

  ServiceServer sink(member_options);
  sink.start();
  const auto ship_start = std::chrono::steady_clock::now();
  ServiceClient source_client(source.port());
  const JsonValue ship_ack = source_client.call(
      str_format("{\"id\":\"ship\",\"type\":\"ship_segment\","
                 "\"port\":%u}",
                 static_cast<unsigned>(sink.port())));
  const double ship_s =
      std::max(1e-6, std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - ship_start)
                         .count());
  const std::int64_t shipped =
      ship_ack.get_string("status", "") == "ok"
          ? ship_ack.at("ship").at("fill").get_int("imported", 0)
          : -1;
  BFDN_CHECK(shipped == ship_vocabulary, "ship lost records");
  // Every shipped key must now serve warm from the sink.
  const PhaseResult sink_warm =
      run_plan(sink.port(), connections, ship_plan);
  phase_errors += sink_warm.errors;
  const ResultCache::Stats sink_cache = sink.cache_stats();
  BFDN_CHECK(sink_cache.misses == 0, "sink recomputed a shipped key");

  ServiceServer recompute(member_options);
  recompute.start();
  const auto recompute_start = std::chrono::steady_clock::now();
  const PhaseResult recomputed =
      run_plan(recompute.port(), connections, ship_plan);
  const double recompute_s = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() -
                                 recompute_start)
                                 .count();
  phase_errors += recomputed.errors;
  source.drain();
  sink.drain();
  recompute.drain();
  const double ship_speedup = recompute_s / ship_s;
  const bool ship_pass = ship_speedup >= gate_ship;

  const bool pass = scaling_pass && ship_pass && phase_errors == 0;

  JsonWriter w(/*pretty=*/true);
  w.begin_object();
  w.kv("bench", "cluster");
  w.kv("smoke", smoke);
  w.kv("connections", connections);
  w.kv("nodes", nodes);
  w.key("scaling").begin_object();
  w.kv("vocabulary", vocabulary);
  w.kv("shard_cache_capacity", static_cast<std::int64_t>(shard_cache));
  w.kv("measure_requests", measure_n);
  w.key("fleets").begin_array();
  for (const ScalePoint& point : scaling) {
    w.begin_object();
    w.kv("shards", point.shards);
    w.kv("warm_rps", point.rps, 1);
    w.kv("hit_rate", point.hit_rate, 4);
    w.kv("speedup_vs_1", point.speedup, 2);
    w.end_object();
  }
  w.end_array();
  w.kv("gate_min_speedup_2", gate_2x, 1);
  w.kv("gate_min_speedup_4", gate_4x, 1);
  w.kv("pass", scaling_pass);
  w.end_object();
  w.key("hot_tail").begin_object();
  w.kv("probes", hot_probes);
  for (std::size_t arm = 0; arm < tails.size(); ++arm) {
    w.key(arm == 0 ? "no_replica" : "replica").begin_object();
    w.kv("p50_ms", tails[arm].p50_ms, 3);
    w.kv("p95_ms", tails[arm].p95_ms, 3);
    w.kv("p99_ms", tails[arm].p99_ms, 3);
    w.end_object();
  }
  w.end_object();
  w.key("ship_warmup").begin_object();
  w.kv("records", ship_vocabulary);
  w.kv("ship_s", ship_s, 5);
  w.kv("recompute_s", recompute_s, 3);
  w.kv("speedup_vs_recompute", ship_speedup, 1);
  w.kv("gate_min_speedup", gate_ship, 1);
  w.kv("pass", ship_pass);
  w.end_object();
  w.kv("phase_errors", phase_errors);
  w.kv("pass", pass);
  w.end_object();
  std::printf("%s\n", w.str().c_str());

  if (!pass) {
    std::fprintf(stderr,
                 "bench_cluster: gate failed (2-shard %.2f >= %.1f: %s, "
                 "4-shard %.2f >= %.1f: %s, ship %.1f >= %.1f: %s, "
                 "errors %lld)\n",
                 speedup_2, gate_2x, speedup_2 >= gate_2x ? "ok" : "FAIL",
                 speedup_4, gate_4x, speedup_4 >= gate_4x ? "ok" : "FAIL",
                 ship_speedup, gate_ship, ship_pass ? "ok" : "FAIL",
                 static_cast<long long>(phase_errors));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) {
  try {
    return bfdn::run(argc, argv);
  } catch (const bfdn::CheckError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
