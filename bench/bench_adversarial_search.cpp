// E17 (extension) — automated worst-case instance search. For each
// algorithm, hill-climb over tree shapes (fixed n, capped D) to
// maximize rounds/(n/k + D). Evolved ratios corroborate the hierarchy:
// DN-swarm keeps climbing (no guarantee), BFDN plateaus well under its
// Theorem 1 ceiling, CTE barely moves. The evolved BFDN instance is
// also re-checked against its bound — the search may not cross it.
#include <cstdio>

#include "exp/adversarial_search.h"
#include "sim/engine.h"
#include "support/cli.h"
#include "support/table.h"

namespace bfdn {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("bench_adversarial_search",
                "hill-climbed worst-case trees per algorithm");
  cli.add_int("n", 600, "node budget");
  cli.add_int("max_depth", 60, "depth cap for mutations");
  cli.add_int("k", 16, "robots");
  cli.add_int("iterations", 250, "mutations per algorithm");
  cli.add_int("seed", 171717, "search seed");
  cli.add_bool("csv", false, "emit CSV");
  if (!cli.parse(argc, argv)) return 0;

  AdversarialSearchOptions options;
  options.n = cli.get_int("n");
  options.max_depth = static_cast<std::int32_t>(cli.get_int("max_depth"));
  options.k = static_cast<std::int32_t>(cli.get_int("k"));
  options.iterations = cli.get_int("iterations");
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  Table table({"algorithm", "seed_ratio", "evolved_ratio", "gain",
               "accepted", "evolved_D", "within_thm1_bound"});
  for (AlgorithmKind kind :
       {AlgorithmKind::kBfdn, AlgorithmKind::kBfdnShortcut,
        AlgorithmKind::kCte, AlgorithmKind::kDnSwarm}) {
    const AdversarialSearchResult result =
        adversarial_search(kind, options);
    std::string bound_cell = "n/a";
    if (kind == AlgorithmKind::kBfdn ||
        kind == AlgorithmKind::kBfdnShortcut) {
      const std::int64_t rounds =
          run_single_cell(kind, result.tree, options.k);
      const double bound = theorem1_bound(
          result.tree.num_nodes(), result.tree.depth(),
          result.tree.max_degree(), options.k);
      bound_cell = static_cast<double>(rounds) <= bound ? "yes" : "NO";
    }
    table.add_row({algorithm_kind_name(kind),
                   cell(result.initial_ratio, 2),
                   cell(result.best_ratio, 2),
                   cell(result.best_ratio / result.initial_ratio, 2),
                   cell(result.accepted), cell(std::int64_t{
                       result.tree.depth()}),
                   bound_cell});
  }
  std::printf("# E17 (adversarial search): n = %lld, D <= %lld, "
              "k = %lld, %lld mutations\n",
              static_cast<long long>(cli.get_int("n")),
              static_cast<long long>(cli.get_int("max_depth")),
              static_cast<long long>(cli.get_int("k")),
              static_cast<long long>(cli.get_int("iterations")));
  std::fputs(cli.get_bool("csv") ? table.to_csv().c_str()
                                 : table.to_console().c_str(),
             stdout);
  return 0;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) { return bfdn::run(argc, argv); }
