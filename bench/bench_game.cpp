// E3 — Theorem 3: the balls-in-urns game. For each (k, Delta), the
// least-loaded player's game length against the adversary zoo, the
// exact DP optimum R(k, k) where tractable, and the theorem's bound
// k min(log Delta, log k) + 2k. Shape: sim <= DP optimum <= bound, and
// the greedy adversary dominates the others.
#include <cstdio>

#include "game/dp.h"
#include "game/urn_game.h"
#include "support/cli.h"
#include "support/table.h"

namespace bfdn {
namespace {

std::int64_t play(std::int32_t k, std::int32_t delta,
                  AdversaryStrategy& adversary) {
  auto player = make_least_loaded_player();
  return play_game(UrnBoard(k, delta), *player, adversary).steps;
}

int run(int argc, const char* const* argv) {
  CliParser cli("bench_game",
                "Theorem 3: urn-game lengths vs the k log k + 2k bound");
  cli.add_int("dp_limit", 512, "largest k for the exact DP column");
  cli.add_bool("csv", false, "emit CSV");
  if (!cli.parse(argc, argv)) return 0;
  const std::int64_t dp_limit = cli.get_int("dp_limit");

  Table table({"k", "Delta", "bound", "dp_optimal", "greedy", "eager",
               "round_robin", "random", "dp/bound", "greedy/dp"});
  const std::vector<std::pair<std::int32_t, std::int32_t>> grid = {
      {2, 2},    {4, 4},     {8, 2},    {8, 8},    {16, 4},
      {16, 16},  {32, 32},   {64, 8},   {64, 64},  {128, 128},
      {256, 16}, {256, 256}, {512, 64}, {1024, 1024}};
  for (const auto& [k, delta] : grid) {
    auto greedy = make_greedy_adversary();
    auto eager = make_eager_adversary();
    auto round_robin = make_round_robin_adversary();
    auto random = make_random_adversary(777);
    const std::int64_t s_greedy = play(k, delta, *greedy);
    const std::int64_t s_eager = play(k, delta, *eager);
    const std::int64_t s_rr = play(k, delta, *round_robin);
    const std::int64_t s_rand = play(k, delta, *random);
    const double bound = theorem3_bound(k, delta);

    std::string dp_cell = "-";
    double dp_ratio = 0;
    double greedy_ratio = 0;
    if (k <= dp_limit) {
      const RTable dp(k, delta);
      const std::int64_t optimal = dp.optimal_game_length();
      dp_cell = cell(optimal);
      dp_ratio = static_cast<double>(optimal) / bound;
      greedy_ratio =
          static_cast<double>(s_greedy) / static_cast<double>(optimal);
    }
    table.add_row({cell(k), cell(delta), cell(bound, 0), dp_cell,
                   cell(s_greedy), cell(s_eager), cell(s_rr), cell(s_rand),
                   dp_ratio > 0 ? cell(dp_ratio, 3) : "-",
                   greedy_ratio > 0 ? cell(greedy_ratio, 3) : "-"});
  }
  std::fputs("# E3 (Theorem 3): urn-game length, least-loaded player\n",
             stdout);
  std::fputs(cli.get_bool("csv") ? table.to_csv().c_str()
                                 : table.to_console().c_str(),
             stdout);

  // Player ablation at a representative size.
  Table ablation({"player", "steps_vs_greedy_adversary"});
  const std::int32_t k = 64;
  const std::int32_t delta = 64;
  for (int which = 0; which < 3; ++which) {
    std::unique_ptr<PlayerStrategy> player;
    if (which == 0) player = make_least_loaded_player();
    if (which == 1) player = make_random_player(5);
    if (which == 2) player = make_most_loaded_player();
    auto adversary = make_greedy_adversary();
    const GameResult result =
        play_game(UrnBoard(k, delta), *player, *adversary);
    ablation.add_row({player->name(), cell(result.steps)});
  }
  std::fputs("\n# E3 ablation: player strategies, k = Delta = 64 "
             "(Theorem 3 bound for the least-loaded player: 394)\n",
             stdout);
  std::fputs(cli.get_bool("csv") ? ablation.to_csv().c_str()
                                 : ablation.to_console().c_str(),
             stdout);
  return 0;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) { return bfdn::run(argc, argv); }
