// E6 — Proposition 6: BFDN in the restricted memory/communication model
// (write-read whiteboards + central planner at the root). The table
// compares the write-read implementation's rounds with the
// complete-communication BFDN and the shared Theorem-1 bound, and
// reports the robots' memory high-water mark against the model's
// Delta + D log2(Delta) allowance.
#include <cstdio>

#include "core/bfdn.h"
#include "distributed/writeread.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "support/cli.h"
#include "support/table.h"

namespace bfdn {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("bench_writeread",
                "Proposition 6: write-read BFDN vs complete-communication "
                "BFDN vs the shared bound");
  cli.add_int("scale", 1500, "approximate node count of the zoo trees");
  cli.add_int("seed", 60606, "zoo generation seed");
  cli.add_bool("csv", false, "emit CSV");
  if (!cli.parse(argc, argv)) return 0;

  Table table({"tree", "n", "D", "k", "wr_rounds", "cc_rounds", "bound",
               "wr/bound", "mem_bits", "mem_allowance"});
  for (const auto& [name, tree] :
       make_tree_zoo(cli.get_int("scale"),
                     static_cast<std::uint64_t>(cli.get_int("seed")))) {
    for (std::int32_t k : {4, 16, 64}) {
      const WriteReadResult wr = run_write_read_bfdn(tree, k);
      BfdnAlgorithm algo(k);
      RunConfig config;
      config.num_robots = k;
      const RunResult cc = run_exploration(tree, algo, config);
      if (!wr.complete || !wr.all_at_root || !cc.complete) {
        std::fprintf(stderr, "FATAL: %s k=%d incomplete\n", name.c_str(),
                     k);
        return 1;
      }
      const double bound = theorem1_bound(tree.num_nodes(), tree.depth(),
                                          tree.max_degree(), k);
      table.add_row(
          {name, cell(tree.num_nodes()), cell(std::int64_t{tree.depth()}),
           cell(k), cell(wr.rounds), cell(cc.rounds), cell(bound, 0),
           cell(static_cast<double>(wr.rounds) / bound, 3),
           cell(wr.max_robot_memory_bits), cell(wr.memory_allowance_bits)});
    }
  }
  std::fputs("# E6 (Proposition 6): write-read BFDN\n", stdout);
  std::fputs(cli.get_bool("csv") ? table.to_csv().c_str()
                                 : table.to_console().c_str(),
             stdout);
  return 0;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) { return bfdn::run(argc, argv); }
