// E2 — Lemma 2 validation plus the reanchor-policy ablation.
//
// Lemma 2: in any BFDN execution, the number of Reanchor calls that
// return an anchor at depth d (1 <= d <= D-1) is at most
// k (min(log k, log Delta) + 3). The table reports, per tree and k, the
// worst per-depth reanchor count against that budget — for the paper's
// least-loaded rule and for the ablation rules (random / first-fit /
// most-loaded), showing the balancing rule is what earns the bound.
#include <cstdio>

#include "core/bfdn.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "support/cli.h"
#include "support/table.h"

namespace bfdn {
namespace {

struct PolicyRun {
  std::int64_t worst_per_depth = 0;
  std::int64_t total = 0;
  std::int64_t rounds = 0;
};

PolicyRun run_policy(const Tree& tree, std::int32_t k,
                     ReanchorPolicy policy) {
  BfdnOptions options;
  options.policy = policy;
  options.seed = 7;
  BfdnAlgorithm algo(k, options);
  RunConfig config;
  config.num_robots = k;
  const RunResult result = run_exploration(tree, algo, config);
  PolicyRun out;
  out.rounds = result.rounds;
  out.total = result.total_reanchors;
  for (const auto& [depth, count] : result.reanchors_by_depth.buckets()) {
    if (depth == 0) continue;
    out.worst_per_depth = std::max(out.worst_per_depth,
                                   static_cast<std::int64_t>(count));
  }
  return out;
}

int run(int argc, const char* const* argv) {
  CliParser cli("bench_lemma2",
                "Lemma 2: per-depth reanchor counts vs the k(log k + 3) "
                "budget, with policy ablation");
  cli.add_int("scale", 1500, "approximate node count of the zoo trees");
  cli.add_int("seed", 31415, "zoo generation seed");
  cli.add_bool("csv", false, "emit CSV");
  if (!cli.parse(argc, argv)) return 0;

  Table table({"tree", "k", "budget", "least_loaded", "random",
               "first_fit", "most_loaded", "ll_total", "ll_rounds"});
  for (const auto& [name, tree] :
       make_tree_zoo(cli.get_int("scale"),
                     static_cast<std::uint64_t>(cli.get_int("seed")))) {
    for (std::int32_t k : {4, 16, 64}) {
      const double budget = lemma2_bound(k, tree.max_degree());
      const PolicyRun least =
          run_policy(tree, k, ReanchorPolicy::kLeastLoaded);
      const PolicyRun random = run_policy(tree, k, ReanchorPolicy::kRandom);
      const PolicyRun first =
          run_policy(tree, k, ReanchorPolicy::kFirstFit);
      const PolicyRun most =
          run_policy(tree, k, ReanchorPolicy::kMostLoaded);
      table.add_row({name, cell(k), cell(budget, 0),
                     cell(least.worst_per_depth),
                     cell(random.worst_per_depth),
                     cell(first.worst_per_depth),
                     cell(most.worst_per_depth), cell(least.total),
                     cell(least.rounds)});
    }
  }
  std::fputs("# E2 (Lemma 2): worst per-depth reanchor count vs budget\n",
             stdout);
  std::fputs(cli.get_bool("csv") ? table.to_csv().c_str()
                                 : table.to_console().c_str(),
             stdout);
  return 0;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) { return bfdn::run(argc, argv); }
