// E8 — Proposition 9: BFDN on non-tree graphs with a distance oracle.
// Grid worlds with random rectangular obstacles (the setting of [12]),
// plus cycles and cliques as structural extremes. Reports rounds vs the
// 2m/k + D^2(min(log Delta, log k) + 3) bound and the BFS-tree/closed
// edge split the variant rule produces.
#include <cstdio>

#include "graph/generators.h"
#include "graph/grid_world.h"
#include "graphexp/graph_bfdn.h"
#include "support/cli.h"
#include "support/table.h"

namespace bfdn {
namespace {

void add_run(Table& table, const std::string& label, const Graph& graph,
             std::int32_t k) {
  const GraphExplorationResult result = run_graph_bfdn(graph, k);
  const double bound = proposition9_bound(graph.num_edges(), graph.radius(),
                                          graph.max_degree(), k);
  table.add_row({label, cell(graph.num_nodes()), cell(graph.num_edges()),
                 cell(std::int64_t{graph.radius()}), cell(k),
                 cell(result.rounds), cell(bound, 0),
                 cell(static_cast<double>(result.rounds) / bound, 3),
                 cell(result.tree_edges), cell(result.closed_edges),
                 cell_bool(result.complete && result.all_at_origin)});
}

int run(int argc, const char* const* argv) {
  CliParser cli("bench_graphexp",
                "Proposition 9: graph exploration with a distance oracle");
  cli.add_int("grid", 40, "grid side length");
  cli.add_int("rects", 14, "random rectangular obstacles per world");
  cli.add_int("seed", 80808, "world seed");
  cli.add_bool("csv", false, "emit CSV");
  if (!cli.parse(argc, argv)) return 0;

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  const auto side = static_cast<std::int32_t>(cli.get_int("grid"));
  const auto rects = static_cast<std::int32_t>(cli.get_int("rects"));

  Table table({"world", "n", "m", "D", "k", "rounds", "bound",
               "ratio", "tree_edges", "closed", "ok"});
  // Open grid and obstacle worlds.
  {
    const GridWorld open_world(side, side, {});
    for (std::int32_t k : {4, 16, 64}) {
      add_run(table, "grid-open", open_world.graph(), k);
    }
  }
  for (int rep = 0; rep < 3; ++rep) {
    Rng child = rng.split();
    const GridWorld world =
        GridWorld::random(side, side, rects, side / 4, child);
    for (std::int32_t k : {4, 16, 64}) {
      add_run(table,
              "grid-rects#" + std::to_string(rep) +
                  (world.distances_are_manhattan() ? " (manhattan)" : ""),
              world.graph(), k);
    }
  }
  // Structural extremes.
  {
    std::vector<std::pair<NodeId, NodeId>> edges;
    const std::int32_t n = 256;
    for (NodeId v = 0; v < n; ++v) {
      edges.emplace_back(v, static_cast<NodeId>((v + 1) % n));
    }
    const Graph cycle = Graph::from_edges(n, edges);
    add_run(table, "cycle256", cycle, 8);
  }
  {
    std::vector<std::pair<NodeId, NodeId>> edges;
    const std::int32_t n = 40;
    for (NodeId a = 0; a < n; ++a) {
      for (NodeId b = static_cast<NodeId>(a + 1); b < n; ++b) {
        edges.emplace_back(a, b);
      }
    }
    const Graph clique = Graph::from_edges(n, edges);
    add_run(table, "clique40", clique, 16);
  }
  std::fputs("# E8 (Proposition 9): graph BFDN with distance oracle\n",
             stdout);
  std::fputs(cli.get_bool("csv") ? table.to_csv().c_str()
                                 : table.to_console().c_str(),
             stdout);
  return 0;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) { return bfdn::run(argc, argv); }
