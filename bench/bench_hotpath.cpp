// E18 — engine-throughput bench for the simulator hot path.
//
// Measures wall-clock rounds/second of the full engine + BFDN stack on
// large instances (comb / star / complete binary at n ~ 1e5..1e6 with
// k in {64, 256, 1024}), the regime the ROADMAP's scaling PRs target.
// Deep families are capped with --cap rounds: throughput, not
// completion, is the quantity under test. Output is one JSON document
// on stdout so the numbers land in the bench trajectory
// (BENCH_hotpath.json) and regressions are visible in review.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/bfdn.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "support/cli.h"

namespace bfdn {
namespace {

struct Config {
  std::string family;
  Tree tree;
  std::int32_t k;
  std::int64_t cap;  // 0 = run to completion
};

int run(int argc, const char* const* argv) {
  CliParser cli("bench_hotpath",
                "rounds/sec of the engine round loop on large (n, k)");
  cli.add_int("cap", 20000, "max rounds per deep-family cell");
  cli.add_int("repeat", 1, "timed repetitions per cell (best is kept)");
  cli.add_bool("large", false, "add the n ~ 1e6 cells (slower)");
  if (!cli.parse(argc, argv)) return 0;
  const std::int64_t cap = cli.get_int("cap");
  const std::int64_t repeat = std::max<std::int64_t>(1,
                                                     cli.get_int("repeat"));

  std::vector<Config> configs;
  // comb: deep + thin, dominated by outbound navigation and per-depth
  // frontier maintenance. spine*(tooth+1) ~ 1e5.
  configs.push_back({"comb", make_comb(316, 315), 1024, cap});
  configs.push_back({"comb", make_comb(316, 315), 256, cap});
  // star: maximal single-node frontier; stresses the dangling-edge
  // reservation pool and the per-round selector setup.
  configs.push_back({"star", make_star(100001), 1024, 0});
  configs.push_back({"star", make_star(100001), 64, 0});
  // complete binary: wide frontiers at every depth; stresses Reanchor's
  // candidate scan and the open-node index.
  configs.push_back({"binary", make_complete_bary(2, 16), 1024, 0});
  configs.push_back({"binary", make_complete_bary(2, 16), 256, 0});
  configs.push_back({"binary", make_complete_bary(2, 16), 64, 0});
  if (cli.get_bool("large")) {
    configs.push_back({"comb", make_comb(1000, 999), 1024, cap});
    configs.push_back({"star", make_star(1000001), 1024, 0});
    configs.push_back({"binary", make_complete_bary(2, 19), 1024, 0});
  }

  std::printf("{\n  \"bench\": \"hotpath\",\n  \"cells\": [\n");
  bool first = true;
  for (const Config& config : configs) {
    double best_seconds = 0;
    std::int64_t rounds = 0;
    bool complete = false;
    for (std::int64_t rep = 0; rep < repeat; ++rep) {
      BfdnAlgorithm algorithm(config.k);
      RunConfig run_config;
      run_config.num_robots = config.k;
      run_config.max_rounds = config.cap;
      const auto start = std::chrono::steady_clock::now();
      const RunResult result =
          run_exploration(config.tree, algorithm, run_config);
      const auto stop = std::chrono::steady_clock::now();
      const double seconds =
          std::chrono::duration<double>(stop - start).count();
      if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
      rounds = result.rounds;
      complete = result.complete;
    }
    const double rounds_per_sec =
        best_seconds > 0 ? static_cast<double>(rounds) / best_seconds : 0;
    std::printf("%s    {\"family\": \"%s\", \"n\": %lld, \"k\": %d, "
                "\"rounds\": %lld, \"complete\": %s, "
                "\"wall_s\": %.4f, \"rounds_per_sec\": %.1f}",
                first ? "" : ",\n", config.family.c_str(),
                static_cast<long long>(config.tree.num_nodes()), config.k,
                static_cast<long long>(rounds), complete ? "true" : "false",
                best_seconds, rounds_per_sec);
    first = false;
    std::fflush(stdout);
  }
  std::printf("\n  ]\n}\n");
  return 0;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) { return bfdn::run(argc, argv); }
