// E18 — engine-throughput bench for the simulator hot path.
//
// Measures wall-clock rounds/second of the full engine + BFDN stack on
// large instances (comb / caterpillar / star / complete binary at
// n ~ 1e5..1e6 with k in {64, 256, 1024}), the regime the ROADMAP's
// scaling PRs target. Every cell is timed twice: once with the stepped
// round loop (fast_forward = false) and once with the event-driven
// fast-forward engine, and the two runs must agree on rounds and final
// state — the bench doubles as a coarse differential check. Deep
// families are capped with --cap rounds: throughput, not completion, is
// the quantity under test. Output is one JSON document on stdout so the
// numbers land in the bench trajectory (BENCH_fastforward.json) and
// regressions are visible in review.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/bfdn.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "support/cli.h"
#include "support/json.h"

namespace bfdn {
namespace {

struct Config {
  std::string family;
  Tree tree;
  std::int32_t k;
  std::int64_t cap;  // 0 = run to completion
};

struct Timed {
  double seconds = 0;
  RunResult result;
};

Timed time_cell(const Config& config, bool fast_forward,
                std::int64_t repeat) {
  Timed best;
  for (std::int64_t rep = 0; rep < repeat; ++rep) {
    BfdnAlgorithm algorithm(config.k);
    RunConfig run_config;
    run_config.num_robots = config.k;
    run_config.max_rounds = config.cap;
    run_config.fast_forward = fast_forward;
    const auto start = std::chrono::steady_clock::now();
    RunResult result = run_exploration(config.tree, algorithm, run_config);
    const auto stop = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    if (rep == 0 || seconds < best.seconds) best.seconds = seconds;
    best.result = std::move(result);
  }
  return best;
}

int run(int argc, const char* const* argv) {
  CliParser cli("bench_hotpath",
                "stepped vs fast-forward rounds/sec of the engine round "
                "loop on large (n, k)");
  cli.add_int("cap", 20000, "max rounds per deep-family cell");
  cli.add_int("repeat", 1, "timed repetitions per cell (best is kept)");
  cli.add_bool("large", false, "add the n ~ 1e6 cells (slower)");
  cli.add_bool("smoke", false,
               "single small cell only (CI: exercises the fast-forward "
               "path in Release and checks it against stepped)");
  if (!cli.parse(argc, argv)) return 0;
  const std::int64_t cap = cli.get_int("cap");
  const std::int64_t repeat = std::max<std::int64_t>(1,
                                                     cli.get_int("repeat"));

  std::vector<Config> configs;
  if (cli.get_bool("smoke")) {
    configs.push_back({"comb", make_comb(100, 99), 256, 2000});
  } else {
    // comb: deep + thin, dominated by outbound navigation and per-depth
    // frontier maintenance. spine*(tooth+1) ~ 1e5.
    configs.push_back({"comb", make_comb(316, 315), 1024, cap});
    configs.push_back({"comb", make_comb(316, 315), 256, cap});
    configs.push_back({"comb", make_comb(316, 315), 64, cap});
    // caterpillar: the deepest family (D ~ n/4); transit rounds over the
    // long spine dominate, the regime fast-forward targets.
    configs.push_back({"caterpillar", make_caterpillar(25000, 3), 1024,
                       cap});
    configs.push_back({"caterpillar", make_caterpillar(25000, 3), 256,
                       cap});
    configs.push_back({"caterpillar", make_caterpillar(25000, 3), 64,
                       cap});
    // star: maximal single-node frontier; stresses the dangling-edge
    // reservation pool and the per-round selector setup.
    configs.push_back({"star", make_star(100001), 1024, 0});
    configs.push_back({"star", make_star(100001), 64, 0});
    // complete binary: wide frontiers at every depth; stresses
    // Reanchor's candidate scan and the open-node index.
    configs.push_back({"binary", make_complete_bary(2, 16), 1024, 0});
    configs.push_back({"binary", make_complete_bary(2, 16), 256, 0});
    configs.push_back({"binary", make_complete_bary(2, 16), 64, 0});
    if (cli.get_bool("large")) {
      configs.push_back({"comb", make_comb(1000, 999), 1024, cap});
      configs.push_back({"star", make_star(1000001), 1024, 0});
      configs.push_back({"binary", make_complete_bary(2, 19), 1024, 0});
    }
  }

  int status = 0;
  std::printf("{\n  \"bench\": \"fastforward\",\n  \"cells\": [\n");
  bool first = true;
  for (const Config& config : configs) {
    const Timed stepped = time_cell(config, /*fast_forward=*/false, repeat);
    const Timed ff = time_cell(config, /*fast_forward=*/true, repeat);
    if (stepped.result.rounds != ff.result.rounds ||
        stepped.result.final_state_hash != ff.result.final_state_hash) {
      std::fprintf(stderr,
                   "bench_hotpath: fast-forward DIVERGES from stepped on "
                   "%s n=%lld k=%d (rounds %lld vs %lld)\n",
                   config.family.c_str(),
                   static_cast<long long>(config.tree.num_nodes()),
                   config.k,
                   static_cast<long long>(stepped.result.rounds),
                   static_cast<long long>(ff.result.rounds));
      status = 1;
    }
    const auto per_sec = [](const Timed& t) {
      return t.seconds > 0
                 ? static_cast<double>(t.result.rounds) / t.seconds
                 : 0.0;
    };
    const double stepped_rps = per_sec(stepped);
    const double ff_rps = per_sec(ff);
    // One compact JSON object per cell, emitted as the sweep runs so a
    // long bench shows progress; the envelope above/below makes the
    // whole stdout one document.
    JsonWriter cell;
    cell.begin_object();
    cell.kv("family", config.family);
    cell.kv("n", config.tree.num_nodes());
    cell.kv("k", config.k);
    cell.kv("rounds", ff.result.rounds);
    cell.kv("complete", ff.result.complete);
    cell.kv("stepped_wall_s", stepped.seconds, 4);
    cell.kv("stepped_rounds_per_sec", stepped_rps, 1);
    cell.kv("ff_wall_s", ff.seconds, 4);
    cell.kv("ff_rounds_per_sec", ff_rps, 1);
    cell.kv("speedup", stepped_rps > 0 ? ff_rps / stepped_rps : 0.0, 2);
    cell.end_object();
    std::printf("%s    %s", first ? "" : ",\n", cell.str().c_str());
    first = false;
    std::fflush(stdout);
  }
  std::printf("\n  ]\n}\n");
  return status;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) { return bfdn::run(argc, argv); }
