// E20 — campaign-throughput bench for the batched multi-run kernel.
//
// Measures aggregate rounds/second of a width-R seed-sweep campaign
// executed through sim/BatchExecutor on the BENCH_fastforward comb
// cells (comb(316, 315), k in {1024, 256, 64}, capped at --cap
// rounds), against the solo loop that runs the same R members as R
// independent fast-forward engine invocations. The seed sweep is
// coalescible — BFDN under the least-loaded policy never consumes its
// seed — so the batch path executes one distinct run and replicates
// it, which is exactly the shape exp/campaign and the service's
// campaign requests feed it. Every cell doubles as a differential
// check: each member's batched RunResult must match its own solo run
// (rounds + final_state_hash), a divergence is a hard error.
//
// Gates (a failed gate is exit status 1, visible in CI):
//   full mode:  aggregate rounds/s >= 5x the frozen BENCH_fastforward
//               ff_rounds_per_sec of the matching comb cell;
//   --smoke:    aggregate rounds/s >= 3x the solo loop measured
//               in-process on one small cell (machine-independent).
// Output is one JSON document on stdout (BENCH_campaign.json).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/bfdn.h"
#include "graph/generators.h"
#include "sim/batch_executor.h"
#include "sim/engine.h"
#include "support/cli.h"
#include "support/json.h"
#include "support/strings.h"

namespace bfdn {
namespace {

struct Config {
  std::string family;
  Tree tree;
  std::int32_t k;
  std::int64_t cap;  // 0 = run to completion
  /// Frozen ff_rounds_per_sec of the matching BENCH_fastforward comb
  /// cell; 0 means "no frozen baseline, gate against the measured solo
  /// loop" (smoke mode).
  double frozen_solo_rps;
};

RunConfig member_config(const Config& config) {
  RunConfig run_config;
  run_config.num_robots = config.k;
  run_config.max_rounds = config.cap;
  run_config.fast_forward = true;
  return run_config;
}

BfdnOptions member_options(std::int64_t seed) {
  BfdnOptions options;  // least-loaded policy: seed-blind by design
  options.seed = static_cast<std::uint64_t>(seed);
  return options;
}

int run(int argc, const char* const* argv) {
  CliParser cli("bench_campaign",
                "aggregate rounds/sec of a width-R seed-sweep campaign "
                "through the batch executor vs R independent solo runs");
  cli.add_int("cap", 20000, "max rounds per cell");
  cli.add_int("width", 8, "campaign members per cell (R)");
  cli.add_int("repeat", 1, "timed repetitions per cell (best is kept)");
  cli.add_bool("smoke", false,
               "single small cell, gated against the in-process solo "
               "loop instead of the frozen baseline (CI)");
  if (!cli.parse(argc, argv)) return 0;
  const std::int64_t cap = cli.get_int("cap");
  const std::int64_t width = std::max<std::int64_t>(1,
                                                    cli.get_int("width"));
  const std::int64_t repeat = std::max<std::int64_t>(1,
                                                     cli.get_int("repeat"));

  std::vector<Config> configs;
  double gate_factor = 5.0;
  if (cli.get_bool("smoke")) {
    configs.push_back({"comb", make_comb(100, 99), 256, 2000, 0.0});
    gate_factor = 3.0;
  } else {
    // The BENCH_fastforward comb cells with their frozen
    // ff_rounds_per_sec (the solo fast-forward engine's throughput on
    // the reference machine — see BENCH_fastforward.json).
    configs.push_back({"comb", make_comb(316, 315), 1024, cap, 77691.0});
    configs.push_back({"comb", make_comb(316, 315), 256, cap, 222181.3});
    configs.push_back({"comb", make_comb(316, 315), 64, cap, 639052.6});
  }

  int status = 0;
  std::printf("{\n  \"bench\": \"campaign\",\n  \"cells\": [\n");
  bool first = true;
  for (const Config& config : configs) {
    // Solo loop: the same R members as R independent engine runs.
    // Timed even in full mode so the JSON records the machine's own
    // solo throughput next to the frozen baseline.
    std::vector<RunResult> solo(static_cast<std::size_t>(width));
    double solo_seconds = 0;
    for (std::int64_t rep = 0; rep < repeat; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      for (std::int64_t i = 0; i < width; ++i) {
        BfdnAlgorithm algorithm(config.k, member_options(i + 1));
        solo[static_cast<std::size_t>(i)] =
            run_exploration(config.tree, algorithm, member_config(config));
      }
      const auto stop = std::chrono::steady_clock::now();
      const double seconds =
          std::chrono::duration<double>(stop - start).count();
      if (rep == 0 || seconds < solo_seconds) solo_seconds = seconds;
    }

    // Batched campaign: one BatchExecutor pass, seed sweep tagged with
    // one coalesce key per (algo, k) — the shape the scheduler's
    // batch_coalesce_key produces for these members.
    std::vector<RunResult> batched;
    double batch_seconds = 0;
    BatchExecutor::Stats batch_stats;
    for (std::int64_t rep = 0; rep < repeat; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      BatchExecutor batch(config.tree);
      for (std::int64_t i = 0; i < width; ++i) {
        batch.add_member(
            std::make_unique<BfdnAlgorithm>(config.k,
                                            member_options(i + 1)),
            member_config(config),
            str_format("bfdn-least-loaded-k%d", config.k));
      }
      std::vector<RunResult> results = batch.run();
      const auto stop = std::chrono::steady_clock::now();
      const double seconds =
          std::chrono::duration<double>(stop - start).count();
      if (rep == 0 || seconds < batch_seconds) {
        batch_seconds = seconds;
        batch_stats = batch.stats();
      }
      batched = std::move(results);
    }

    // Differential check: run for run against the solo engine.
    std::int64_t total_rounds = 0;
    for (std::int64_t i = 0; i < width; ++i) {
      const auto& b = batched[static_cast<std::size_t>(i)];
      const auto& s = solo[static_cast<std::size_t>(i)];
      total_rounds += b.rounds;
      if (b.rounds != s.rounds ||
          b.final_state_hash != s.final_state_hash) {
        std::fprintf(stderr,
                     "bench_campaign: batched member %lld DIVERGES from "
                     "its solo run on %s n=%lld k=%d (rounds %lld vs "
                     "%lld)\n",
                     static_cast<long long>(i), config.family.c_str(),
                     static_cast<long long>(config.tree.num_nodes()),
                     config.k, static_cast<long long>(b.rounds),
                     static_cast<long long>(s.rounds));
        status = 1;
      }
    }

    const double batch_rps =
        batch_seconds > 0 ? static_cast<double>(total_rounds) /
                                batch_seconds
                          : 0.0;
    const double solo_rps =
        solo_seconds > 0 ? static_cast<double>(total_rounds) /
                               solo_seconds
                         : 0.0;
    // Full mode gates against the frozen solo baseline (the recorded
    // reference-machine number the issue names); smoke mode against
    // the solo loop just measured, so the CI gate tracks the machine
    // it runs on.
    const double gate_baseline =
        config.frozen_solo_rps > 0 ? config.frozen_solo_rps : solo_rps;
    const double gate_rps = gate_factor * gate_baseline;
    const bool pass = batch_rps >= gate_rps;
    if (!pass) {
      std::fprintf(stderr,
                   "bench_campaign: GATE FAILED on %s n=%lld k=%d: "
                   "%.1f aggregate rounds/s < %.1fx baseline %.1f\n",
                   config.family.c_str(),
                   static_cast<long long>(config.tree.num_nodes()),
                   config.k, batch_rps, gate_factor, gate_baseline);
      status = 1;
    }

    JsonWriter cell;
    cell.begin_object();
    cell.kv("family", config.family);
    cell.kv("n", config.tree.num_nodes());
    cell.kv("k", config.k);
    cell.kv("width", width);
    cell.kv("distinct_runs", batch_stats.distinct_runs);
    cell.kv("coalesced", batch_stats.coalesced);
    cell.kv("aggregate_rounds", total_rounds);
    cell.kv("batch_wall_s", batch_seconds, 4);
    cell.kv("batch_rounds_per_sec", batch_rps, 1);
    cell.kv("solo_wall_s", solo_seconds, 4);
    cell.kv("solo_rounds_per_sec", solo_rps, 1);
    if (config.frozen_solo_rps > 0) {
      cell.kv("frozen_solo_rounds_per_sec", config.frozen_solo_rps, 1);
    }
    cell.kv("speedup_vs_gate_baseline",
            gate_baseline > 0 ? batch_rps / gate_baseline : 0.0, 2);
    cell.kv("gate_factor", gate_factor, 1);
    cell.kv("pass", pass);
    cell.end_object();
    std::printf("%s    %s", first ? "" : ",\n", cell.str().c_str());
    first = false;
    std::fflush(stdout);
  }
  std::printf("\n  ]\n}\n");
  return status;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) { return bfdn::run(argc, argv); }
