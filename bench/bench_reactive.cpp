// E13 (extension, Remark 8) — reactive adversaries that observe the
// round's selected moves before blocking. Two findings worth a table:
// (1) blocking the trailing robots is nearly free for the team, while
// blocking the leading robots lets the adversary hoard the frontier's
// reservations and starve everyone for ~budget/#victims rounds;
// (2) completion is still guaranteed for any finite block budget.
#include <cstdio>

#include "adversarial/reactive.h"
#include "core/bfdn.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "support/cli.h"
#include "support/table.h"

namespace bfdn {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("bench_reactive",
                "Remark 8: selection-observing adversaries vs BFDN");
  cli.add_int("k", 8, "robots");
  cli.add_int("seed", 131313, "tree seed");
  cli.add_bool("csv", false, "emit CSV");
  if (!cli.parse(argc, argv)) return 0;

  const auto k = static_cast<std::int32_t>(cli.get_int("k"));
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  const Tree tree = make_tree_with_depth(2000, 16, rng);

  Table table({"adversary", "budget", "rounds", "blocks_spent",
               "complete", "stall_per_block"});
  struct Entry {
    std::string label;
    std::unique_ptr<BudgetedReactiveAdversary> adversary;
  };
  std::int64_t baseline_rounds = 0;
  for (std::int64_t budget : {0, 500, 2000, 8000}) {
    std::vector<Entry> entries;
    entries.push_back({"discovery-blocker",
                       make_discovery_blocker(budget)});
    entries.push_back({"targeted(lead 0,1)",
                       make_targeted_blocker(budget, {0, 1})});
    entries.push_back(
        {"targeted(trail)",
         make_targeted_blocker(budget, {k - 2, k - 1})});
    entries.push_back({"random(p=0.3)",
                       make_random_blocker(budget, 0.3, 77)});
    for (auto& [label, adversary] : entries) {
      BfdnAlgorithm algo(k);
      RunConfig config;
      config.num_robots = k;
      config.reactive = adversary.get();
      const RunResult result = run_exploration(tree, algo, config);
      if (budget == 0 && baseline_rounds == 0) {
        baseline_rounds = result.rounds;
      }
      const double stall =
          adversary->blocks_spent() > 0
              ? static_cast<double>(result.rounds - baseline_rounds) /
                    static_cast<double>(adversary->blocks_spent())
              : 0.0;
      table.add_row({label, cell(budget), cell(result.rounds),
                     cell(adversary->blocks_spent()),
                     cell_bool(result.complete), cell(stall, 3)});
    }
  }
  std::printf("# E13 (Remark 8 extension): %s, k = %d; baseline "
              "(budget 0) rounds = %lld\n",
              tree.summary().c_str(), k,
              static_cast<long long>(baseline_rounds));
  std::fputs(cli.get_bool("csv") ? table.to_csv().c_str()
                                 : table.to_console().c_str(),
             stdout);
  return 0;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) { return bfdn::run(argc, argv); }
