// E16 (extension) — stratum completion timelines. BFDN's defining
// behaviour is its breadth-first wavefront: the working depth only
// moves down, so strata complete in order and early. The table prints,
// for a fixed tree, the round at which each depth stratum was fully
// explored, per algorithm — making the BF wavefront (BFDN), the greedy
// flood (CTE) and the depth-first clumping (DN-swarm) directly visible.
#include <cstdio>

#include "baselines/bfs_levels.h"
#include "baselines/cte.h"
#include "baselines/depth_next_only.h"
#include "core/bfdn.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "support/cli.h"
#include "support/table.h"

namespace bfdn {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("bench_timeline",
                "per-depth completion rounds, per algorithm");
  cli.add_int("n", 4000, "tree size");
  cli.add_int("depth", 16, "tree depth");
  cli.add_int("k", 16, "robots");
  cli.add_int("seed", 161616, "tree seed");
  cli.add_bool("csv", false, "emit CSV");
  if (!cli.parse(argc, argv)) return 0;

  const auto k = static_cast<std::int32_t>(cli.get_int("k"));
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  const Tree tree = make_tree_with_depth(
      cli.get_int("n"), static_cast<std::int32_t>(cli.get_int("depth")),
      rng);
  RunConfig config;
  config.num_robots = k;

  BfdnAlgorithm bfdn_algo(k);
  const RunResult r_bfdn = run_exploration(tree, bfdn_algo, config);
  CteAlgorithm cte_algo(tree, k);
  const RunResult r_cte = run_exploration(tree, cte_algo, config);
  DepthNextOnlyAlgorithm dn_algo(k);
  const RunResult r_dn = run_exploration(tree, dn_algo, config);
  BfsLevelsAlgorithm wave_algo(k);
  const RunResult r_wave = run_exploration(tree, wave_algo, config);

  Table table({"depth", "BFDN", "CTE", "DN_swarm", "BFS_levels"});
  for (std::size_t d = 0;
       d < r_bfdn.depth_completed_round.size(); ++d) {
    table.add_row({cell(static_cast<std::int64_t>(d)),
                   cell(r_bfdn.depth_completed_round[d]),
                   cell(r_cte.depth_completed_round[d]),
                   cell(r_dn.depth_completed_round[d]),
                   cell(r_wave.depth_completed_round[d])});
  }
  std::printf("# E16 (timelines): %s, k = %d — round at which each "
              "stratum finished (total rounds: BFDN %lld, CTE %lld, "
              "DN %lld, BFS-levels %lld)\n",
              tree.summary().c_str(), k,
              static_cast<long long>(r_bfdn.rounds),
              static_cast<long long>(r_cte.rounds),
              static_cast<long long>(r_dn.rounds),
              static_cast<long long>(r_wave.rounds));
  std::fputs(cli.get_bool("csv") ? table.to_csv().c_str()
                                 : table.to_console().c_str(),
             stdout);
  return 0;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) { return bfdn::run(argc, argv); }
