// E21 — durable result-store bench: what persistence buys and costs.
//
// Three measured sections, all in-process (ServiceServer + loopback
// ServiceClient workers, same transport as bfdn_load):
//
//   write_behind: cold-phase req/s with the store's group-commit
//     write-behind enabled vs an identical server without a store
//     (--no-store equivalent). The store flushes off the request path,
//     so the overhead must stay small.
//   restart: fill a fresh store with unique requests, drain the server
//     (flushes the store), boot a second server over the same
//     directory, and replay a Zipf mix over the served set. Every
//     first-pass request should hit recovered segments instead of
//     recomputing — the warm-start payoff.
//   recovery: ResultStore boot time vs store size, over synthetic
//     directories of N records (mmap + checksum scan + index rebuild).
//
// Gates (a failed gate is exit status 1, visible in CI):
//   full mode:  rewarm hit rate >= 0.8, rewarm req/s >= 5x cold req/s,
//               write-behind overhead <= 10%;
//   --smoke:    hit rate >= 0.8, rewarm >= 3x cold, overhead <= 25%
//               (small counts, noisy CI machines).
// Output is one JSON document on stdout (BENCH_store.json).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/client.h"
#include "service/server.h"
#include "store/result_store.h"
#include "support/check.h"
#include "support/cli.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/strings.h"

namespace bfdn {
namespace {

namespace fs = std::filesystem;

/// Deterministic unique-request vocabulary (same spirit as bfdn_load's
/// mix: paired recipe seeds, alternating k).
ServiceRequest make_request(std::int64_t index, std::int64_t nodes) {
  static constexpr const char* kFamilies[] = {"fixed-depth", "random",
                                              "caterpillar", "spider"};
  ServiceRequest request;
  request.id = str_format("b%lld", static_cast<long long>(index));
  const std::int64_t recipe_index = index / 2;
  request.recipe.family = kFamilies[recipe_index % 4];
  request.recipe.nodes = nodes;
  request.recipe.depth = static_cast<std::int32_t>(
      std::max<std::int64_t>(4, std::min<std::int64_t>(40, nodes / 16)));
  request.recipe.arms =
      request.recipe.family == std::string("spider") ? 8 : 3;
  request.recipe.seed = static_cast<std::uint64_t>(5000 + recipe_index);
  request.algo.kind = AlgoKind::kBfdn;
  request.algo.k = index % 2 == 0 ? 8 : 16;
  return request;
}

struct PhaseResult {
  double wall_s = 0;
  std::int64_t ok = 0;
  std::int64_t cached = 0;
  std::int64_t errors = 0;
  double rps() const {
    return wall_s > 0 ? static_cast<double>(ok) / wall_s : 0;
  }
  double hit_rate() const {
    return ok > 0 ? static_cast<double>(cached) / static_cast<double>(ok)
                  : 0;
  }
};

PhaseResult run_requests(std::uint16_t port, std::int32_t connections,
                         const std::vector<ServiceRequest>& plan) {
  std::vector<PhaseResult> tallies(
      static_cast<std::size_t>(connections));
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (std::int32_t w = 0; w < connections; ++w) {
    workers.emplace_back([&, w] {
      PhaseResult& mine = tallies[static_cast<std::size_t>(w)];
      ServiceClient client(port);
      for (std::size_t i = static_cast<std::size_t>(w); i < plan.size();
           i += static_cast<std::size_t>(connections)) {
        const JsonValue response = client.run(plan[i], 500);
        if (response.get_string("status", "") != "ok") {
          ++mine.errors;
          continue;
        }
        ++mine.ok;
        if (response.get_bool("cached", false)) ++mine.cached;
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  PhaseResult total;
  total.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  for (const PhaseResult& t : tallies) {
    total.ok += t.ok;
    total.cached += t.cached;
    total.errors += t.errors;
  }
  return total;
}

ServerOptions bench_server(const std::string& store_dir) {
  ServerOptions options;
  options.threads = 4;
  options.queue_capacity = 64;
  options.cache_capacity = 4096;
  options.store_dir = store_dir;
  options.store_flush_ms = 5;
  return options;
}

std::string scratch_dir(const std::string& name) {
  const fs::path dir =
      fs::temp_directory_path() / ("bfdn_bench_store_" + name);
  fs::remove_all(dir);
  return dir.string();
}

int run(int argc, const char* const* argv) {
  CliParser cli("bench_store",
                "durable result store: write-behind overhead, restart "
                "warm-start throughput, boot recovery time");
  cli.add_int("cold", 96, "unique requests in the fill/cold phase");
  cli.add_int("warm", 384, "Zipf requests replayed after the restart");
  cli.add_int("connections", 4, "concurrent client connections");
  cli.add_int("nodes", 2000, "tree size of generated requests");
  cli.add_int("reps", 3,
              "repetitions of each overhead arm (best-of, noise guard)");
  cli.add_double("zipf-s", 1.1, "Zipf exponent over served ranks");
  cli.add_bool("smoke", false, "small counts + relaxed gates (CI)");
  if (!cli.parse(argc, argv)) return 0;

  const bool smoke = cli.get_bool("smoke");
  const std::int64_t cold_n =
      smoke ? 32 : std::max<std::int64_t>(4, cli.get_int("cold"));
  const std::int64_t warm_n =
      smoke ? 128 : std::max<std::int64_t>(4, cli.get_int("warm"));
  const std::int64_t nodes = smoke ? 300 : cli.get_int("nodes");
  const auto connections = static_cast<std::int32_t>(
      std::max<std::int64_t>(1, cli.get_int("connections")));
  const std::int64_t reps =
      std::max<std::int64_t>(1, cli.get_int("reps"));
  const double hit_gate = 0.8;
  const double speedup_gate = smoke ? 3.0 : 5.0;
  const double overhead_gate = smoke ? 0.25 : 0.10;

  std::vector<ServiceRequest> cold_plan;
  for (std::int64_t i = 0; i < cold_n; ++i) {
    cold_plan.push_back(make_request(i, nodes));
  }

  // --- write-behind overhead: no-store vs store, best-of `reps` ---
  // Arms alternate so drift (thermal, page cache) hits both equally.
  double best_nostore_rps = 0;
  double best_store_rps = 0;
  std::int64_t phase_errors = 0;
  for (std::int64_t rep = 0; rep < reps; ++rep) {
    {
      ServiceServer server(bench_server(""));
      server.start();
      const PhaseResult result =
          run_requests(server.port(), connections, cold_plan);
      best_nostore_rps = std::max(best_nostore_rps, result.rps());
      phase_errors += result.errors + result.cached;  // cold: no hits
      server.drain();
    }
    {
      const std::string dir =
          scratch_dir(str_format("overhead_%lld",
                                 static_cast<long long>(rep)));
      ServiceServer server(bench_server(dir));
      server.start();
      const PhaseResult result =
          run_requests(server.port(), connections, cold_plan);
      best_store_rps = std::max(best_store_rps, result.rps());
      phase_errors += result.errors + result.cached;
      server.drain();
      fs::remove_all(dir);
    }
  }
  const double overhead =
      best_nostore_rps > 0 ? 1.0 - best_store_rps / best_nostore_rps : 1.0;
  const bool overhead_pass = overhead <= overhead_gate;

  // --- restart warm-start: fill, bounce, Zipf replay ---
  const std::string restart_dir = scratch_dir("restart");
  double cold_rps = 0;
  {
    ServiceServer server(bench_server(restart_dir));
    server.start();
    const PhaseResult fill =
        run_requests(server.port(), connections, cold_plan);
    phase_errors += fill.errors + fill.cached;
    cold_rps = fill.rps();
    server.drain();  // flushes the store
  }

  std::vector<double> zipf(static_cast<std::size_t>(cold_n));
  for (std::int64_t r = 0; r < cold_n; ++r) {
    zipf[static_cast<std::size_t>(r)] =
        1.0 / std::pow(static_cast<double>(r + 1),
                       cli.get_double("zipf-s"));
  }
  Rng rng(21);
  std::vector<ServiceRequest> warm_plan;
  for (std::int64_t i = 0; i < warm_n; ++i) {
    const auto rank = static_cast<std::int64_t>(rng.next_weighted(zipf));
    ServiceRequest request = make_request(rank, nodes);
    request.id = str_format("z%lld", static_cast<long long>(i));
    warm_plan.push_back(std::move(request));
  }

  const auto boot_start = std::chrono::steady_clock::now();
  ServiceServer restarted(bench_server(restart_dir));
  const double boot_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - boot_start)
                            .count();
  restarted.start();
  const PhaseResult rewarm =
      run_requests(restarted.port(), connections, warm_plan);
  const StoreStats restart_store = restarted.store()->stats();
  restarted.drain();
  phase_errors += rewarm.errors;
  const double speedup = cold_rps > 0 ? rewarm.rps() / cold_rps : 0;
  const bool hit_pass = rewarm.hit_rate() >= hit_gate;
  const bool speedup_pass = speedup >= speedup_gate;
  fs::remove_all(restart_dir);

  // --- boot recovery time vs store size (direct, no service) ---
  struct RecoveryPoint {
    std::int64_t records;
    std::int64_t file_bytes;
    double boot_s;
  };
  std::vector<RecoveryPoint> recovery;
  const std::vector<std::int64_t> sizes =
      smoke ? std::vector<std::int64_t>{500, 2000}
            : std::vector<std::int64_t>{1000, 4000, 16000};
  for (const std::int64_t count : sizes) {
    const std::string dir = scratch_dir(
        str_format("recovery_%lld", static_cast<long long>(count)));
    StoreOptions options;
    options.dir = dir;
    options.segment_bytes = 1u << 20;
    options.sync_on_flush = false;  // building the fixture, not timing it
    {
      ResultStore store(options);
      for (std::int64_t i = 0; i < count; ++i) {
        // ~330-byte payloads, the size of a typical result object.
        store.put(static_cast<std::uint64_t>(i + 1),
                  str_format("{\"n\":%lld,\"blob\":\"%s\"}",
                             static_cast<long long>(i),
                             std::string(300, 'r').c_str()));
      }
    }
    const auto start = std::chrono::steady_clock::now();
    ResultStore store(options);
    RecoveryPoint point;
    point.boot_s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    point.records = store.stats().recovered_records;
    point.file_bytes = store.stats().file_bytes;
    BFDN_CHECK(point.records == count, "recovery lost records");
    recovery.push_back(point);
    fs::remove_all(dir);
  }

  const bool pass =
      overhead_pass && hit_pass && speedup_pass && phase_errors == 0;

  JsonWriter w(/*pretty=*/true);
  w.begin_object();
  w.kv("bench", "store");
  w.kv("smoke", smoke);
  w.kv("connections", connections);
  w.kv("nodes", nodes);
  w.key("write_behind").begin_object();
  w.kv("cold_requests", cold_n);
  w.kv("reps", reps);
  w.kv("no_store_rps", best_nostore_rps, 1);
  w.kv("store_rps", best_store_rps, 1);
  w.kv("overhead_frac", overhead, 4);
  w.kv("gate_max_overhead", overhead_gate, 2);
  w.kv("pass", overhead_pass);
  w.end_object();
  w.key("restart").begin_object();
  w.kv("fill_requests", cold_n);
  w.kv("rewarm_requests", warm_n);
  w.kv("cold_rps", cold_rps, 1);
  w.kv("boot_s", boot_s, 5);
  w.kv("recovered_records", restart_store.recovered_records);
  w.kv("segments", restart_store.segments);
  w.kv("rewarm_rps", rewarm.rps(), 1);
  w.kv("hit_rate", rewarm.hit_rate(), 4);
  w.kv("gate_min_hit_rate", hit_gate, 2);
  w.kv("speedup_vs_cold", speedup, 2);
  w.kv("gate_min_speedup", speedup_gate, 1);
  w.kv("pass", hit_pass && speedup_pass);
  w.end_object();
  w.key("recovery").begin_array();
  for (const RecoveryPoint& point : recovery) {
    w.begin_object();
    w.kv("records", point.records);
    w.kv("file_bytes", point.file_bytes);
    w.kv("boot_s", point.boot_s, 5);
    w.kv("records_per_sec",
         point.boot_s > 0 ? static_cast<double>(point.records) /
                                point.boot_s
                          : 0,
         0);
    w.end_object();
  }
  w.end_array();
  w.kv("phase_errors", phase_errors);
  w.kv("pass", pass);
  w.end_object();
  std::printf("%s\n", w.str().c_str());

  if (!pass) {
    std::fprintf(stderr,
                 "bench_store: gate failed (overhead %.4f <= %.2f: %s, "
                 "hit %.4f >= %.2f: %s, speedup %.2f >= %.1f: %s, "
                 "errors %lld)\n",
                 overhead, overhead_gate, overhead_pass ? "ok" : "FAIL",
                 rewarm.hit_rate(), hit_gate, hit_pass ? "ok" : "FAIL",
                 speedup, speedup_gate, speedup_pass ? "ok" : "FAIL",
                 static_cast<long long>(phase_errors));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) {
  try {
    return bfdn::run(argc, argv);
  } catch (const bfdn::CheckError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
