// E19 — async vs lockstep engine throughput (per-robot clocks).
//
// Measures wall-clock rounds/second and activations/second of the
// BFDN stack under each built-in AsyncScheduler (round-robin,
// fixed-rate heterogeneous, adversarial laggard, seed-driven random)
// against the synchronous lockstep engine on the two deep families the
// async event loop targets (comb, caterpillar). Round-robin activation
// is required to agree with lockstep on rounds, total activations and
// the final state hash — the bench doubles as a coarse differential
// check, mirroring bench_hotpath's stepped-vs-fast-forward contract.
// Output is one JSON document on stdout so the numbers land in the
// bench trajectory (BENCH_async.json).
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "adversarial/async_scheduler.h"
#include "core/bfdn.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "support/cli.h"
#include "support/json.h"

namespace bfdn {
namespace {

struct Config {
  std::string family;
  Tree tree;
  std::int32_t k;
  std::int64_t cap;  // 0 = run to completion
};

struct Timed {
  double seconds = 0;
  RunResult result;
};

/// One scheduler mode per cell; scheduler == nullptr is the lockstep
/// baseline (the plain synchronous engine, no RunConfig::async).
struct Mode {
  std::string name;
  std::unique_ptr<AsyncScheduler> scheduler;
};

std::vector<Mode> make_modes(std::int32_t k) {
  std::vector<Mode> modes;
  modes.push_back({"lockstep", nullptr});
  modes.push_back({"round-robin", std::make_unique<RoundRobinScheduler>()});
  // Half the fleet at half speed: the heterogeneous regime.
  modes.push_back({"fixed-rate",
                   std::make_unique<FixedRateScheduler>(k, 2, k / 2)});
  // A few robots starved in long bursts: the adversarial regime.
  modes.push_back({"laggard",
                   std::make_unique<LaggardScheduler>(
                       k, 32, std::max<std::int32_t>(1, k / 8))});
  modes.push_back({"random", std::make_unique<RandomScheduler>(1, 3)});
  return modes;
}

Timed time_cell(const Config& config, AsyncScheduler* scheduler,
                std::int64_t repeat) {
  Timed best;
  for (std::int64_t rep = 0; rep < repeat; ++rep) {
    BfdnAlgorithm algorithm(config.k);
    RunConfig run_config;
    run_config.num_robots = config.k;
    run_config.max_rounds = config.cap;
    run_config.async = scheduler;
    const auto start = std::chrono::steady_clock::now();
    RunResult result = run_exploration(config.tree, algorithm, run_config);
    const auto stop = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    if (rep == 0 || seconds < best.seconds) best.seconds = seconds;
    best.result = std::move(result);
  }
  return best;
}

int run(int argc, const char* const* argv) {
  CliParser cli("bench_async",
                "async scheduler zoo vs lockstep rounds/sec and "
                "activations/sec of the engine on deep families");
  cli.add_int("cap", 20000, "max rounds (event times) per cell");
  cli.add_int("repeat", 1, "timed repetitions per cell (best is kept)");
  cli.add_bool("smoke", false,
               "single small cell only (CI: exercises the async event "
               "loop in Release and checks round-robin against "
               "lockstep)");
  if (!cli.parse(argc, argv)) return 0;
  const std::int64_t cap = cli.get_int("cap");
  const std::int64_t repeat = std::max<std::int64_t>(1,
                                                     cli.get_int("repeat"));

  std::vector<Config> configs;
  if (cli.get_bool("smoke")) {
    configs.push_back({"comb", make_comb(100, 99), 64, 2000});
  } else {
    // comb: deep + thin, the frontier-maintenance regime. spine *
    // (tooth + 1) ~ 1e5.
    configs.push_back({"comb", make_comb(316, 315), 256, cap});
    configs.push_back({"comb", make_comb(316, 315), 64, cap});
    // caterpillar: the deepest family (D ~ n/4); long committed-transit
    // walks, the regime the batched async sub-mode targets.
    configs.push_back({"caterpillar", make_caterpillar(25000, 3), 256,
                       cap});
    configs.push_back({"caterpillar", make_caterpillar(25000, 3), 64,
                       cap});
  }

  int status = 0;
  std::printf("{\n  \"bench\": \"async\",\n  \"cells\": [\n");
  bool first = true;
  for (const Config& config : configs) {
    const std::vector<Mode> modes = make_modes(config.k);
    // modes[0] is lockstep: time it first, then judge every async mode
    // against it (round-robin must agree bit-exactly).
    Timed lockstep;
    double lockstep_rps = 0;
    for (const Mode& mode : modes) {
      const Timed timed = time_cell(config, mode.scheduler.get(), repeat);
      if (mode.scheduler == nullptr) {
        lockstep = timed;
        lockstep_rps =
            timed.seconds > 0
                ? static_cast<double>(timed.result.rounds) / timed.seconds
                : 0.0;
      } else if (mode.scheduler->lockstep() &&
                 (timed.result.rounds != lockstep.result.rounds ||
                  timed.result.total_activations !=
                      lockstep.result.total_activations ||
                  timed.result.final_state_hash !=
                      lockstep.result.final_state_hash)) {
        std::fprintf(stderr,
                     "bench_async: %s DIVERGES from lockstep on %s "
                     "n=%lld k=%d (rounds %lld vs %lld)\n",
                     mode.name.c_str(), config.family.c_str(),
                     static_cast<long long>(config.tree.num_nodes()),
                     config.k,
                     static_cast<long long>(timed.result.rounds),
                     static_cast<long long>(lockstep.result.rounds));
        status = 1;
      }
      const double rps =
          timed.seconds > 0
              ? static_cast<double>(timed.result.rounds) / timed.seconds
              : 0.0;
      const double aps =
          timed.seconds > 0
              ? static_cast<double>(timed.result.total_activations) /
                    timed.seconds
              : 0.0;
      JsonWriter cell;
      cell.begin_object();
      cell.kv("family", config.family);
      cell.kv("n", config.tree.num_nodes());
      cell.kv("k", config.k);
      cell.kv("mode", mode.name);
      cell.kv("rounds", timed.result.rounds);
      cell.kv("total_activations", timed.result.total_activations);
      cell.kv("complete", timed.result.complete);
      cell.kv("wall_s", timed.seconds, 4);
      cell.kv("rounds_per_sec", rps, 1);
      cell.kv("activations_per_sec", aps, 1);
      cell.kv("vs_lockstep",
              lockstep_rps > 0 ? rps / lockstep_rps : 0.0, 2);
      cell.end_object();
      std::printf("%s    %s", first ? "" : ",\n", cell.str().c_str());
      first = false;
      std::fflush(stdout);
    }
  }
  std::printf("\n  ]\n}\n");
  return status;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) { return bfdn::run(argc, argv); }
