// E12 — microbenchmarks (google-benchmark): cost of whole exploration
// runs and of the hot per-round machinery, for profiling regressions.
// These measure implementation speed, not the paper's round counts.
#include <benchmark/benchmark.h>

#include "baselines/cte.h"
#include "baselines/depth_next_only.h"
#include "core/bfdn.h"
#include "game/urn_game.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "recursive/bfdn_ell.h"
#include "sim/engine.h"

namespace bfdn {
namespace {

const Tree& bench_tree() {
  static const Tree tree = [] {
    Rng rng(5150);
    return make_tree_with_depth(4000, 25, rng);
  }();
  return tree;
}

void BM_BfdnFullRun(benchmark::State& state) {
  const Tree& tree = bench_tree();
  const auto k = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    BfdnAlgorithm algo(k);
    RunConfig config;
    config.num_robots = k;
    const RunResult result = run_exploration(tree, algo, config);
    benchmark::DoNotOptimize(result.rounds);
  }
  state.SetItemsProcessed(state.iterations() * tree.num_nodes());
}
BENCHMARK(BM_BfdnFullRun)->Arg(4)->Arg(32)->Arg(128);

void BM_CteFullRun(benchmark::State& state) {
  const Tree& tree = bench_tree();
  const auto k = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    CteAlgorithm algo(tree, k);
    RunConfig config;
    config.num_robots = k;
    const RunResult result = run_exploration(tree, algo, config);
    benchmark::DoNotOptimize(result.rounds);
  }
  state.SetItemsProcessed(state.iterations() * tree.num_nodes());
}
BENCHMARK(BM_CteFullRun)->Arg(4)->Arg(32);

void BM_DnSwarmFullRun(benchmark::State& state) {
  const Tree& tree = bench_tree();
  const auto k = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    DepthNextOnlyAlgorithm algo(k);
    RunConfig config;
    config.num_robots = k;
    const RunResult result = run_exploration(tree, algo, config);
    benchmark::DoNotOptimize(result.rounds);
  }
  state.SetItemsProcessed(state.iterations() * tree.num_nodes());
}
BENCHMARK(BM_DnSwarmFullRun)->Arg(32);

void BM_BfdnEllFullRun(benchmark::State& state) {
  const Tree& tree = bench_tree();
  const auto ell = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    BfdnEllAlgorithm algo(64, ell);
    RunConfig config;
    config.num_robots = 64;
    const RunResult result = run_exploration(tree, algo, config);
    benchmark::DoNotOptimize(result.rounds);
  }
  state.SetItemsProcessed(state.iterations() * tree.num_nodes());
}
BENCHMARK(BM_BfdnEllFullRun)->Arg(1)->Arg(2)->Arg(3);

void BM_UrnGame(benchmark::State& state) {
  const auto k = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    auto player = make_least_loaded_player();
    auto adversary = make_greedy_adversary();
    const GameResult result =
        play_game(UrnBoard(k, k), *player, *adversary);
    benchmark::DoNotOptimize(result.steps);
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_UrnGame)->Arg(64)->Arg(512);

void BM_TreeGeneration(benchmark::State& state) {
  const auto n = state.range(0);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    const Tree tree = make_random_leafy(n, 5, rng);
    benchmark::DoNotOptimize(tree.num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TreeGeneration)->Arg(1000)->Arg(10000);

void BM_EulerTour(benchmark::State& state) {
  const Tree& tree = bench_tree();
  for (auto _ : state) {
    const auto tour = euler_tour(tree);
    benchmark::DoNotOptimize(tour.size());
  }
  state.SetItemsProcessed(state.iterations() * 2 * tree.num_edges());
}
BENCHMARK(BM_EulerTour);

}  // namespace
}  // namespace bfdn

BENCHMARK_MAIN();
