// E14 (open directions, Section 1) — the large-team regime. The paper
// cites two anchors for its "close-to-optimal" discussion: exploration
// with k = n requires Omega(D^2) rounds [6], and k >= n/D robots
// suffice for O(D^2) [13]. This bench measures BFDN's rounds in that
// regime and fits the growth exponent in D: the curve should sit
// between the Omega(D^2) floor and Theorem 1's D^2 log k ceiling.
#include <cmath>
#include <cstdio>

#include "baselines/bfs_levels.h"
#include "core/bfdn.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "support/cli.h"
#include "support/table.h"

namespace bfdn {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("bench_many_robots",
                "k >= n/D regime: rounds vs the D^2 law");
  cli.add_int("seed", 141414, "tree seed");
  cli.add_bool("csv", false, "emit CSV");
  if (!cli.parse(argc, argv)) return 0;
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

  Table table({"family", "D", "n", "k", "rounds", "bfs_levels",
               "rounds/D^2", "bound/D^2"});
  double prev_rounds = 0;
  double prev_depth = 0;
  double fitted_exponent = 0;
  for (const std::int32_t depth : {8, 16, 32, 64, 128}) {
    // Comb of total depth 2*half: spine half, teeth half; n ~ half^2,
    // so k = n gives the k = n lower-bound regime of [6].
    const std::int32_t half = depth / 2;
    const Tree tree = make_comb(half, half);
    const auto k = static_cast<std::int32_t>(tree.num_nodes());
    BfdnAlgorithm algo(k);
    RunConfig config;
    config.num_robots = k;
    const RunResult result = run_exploration(tree, algo, config);
    if (!result.complete) {
      std::fprintf(stderr, "FATAL: incomplete at D=%d\n", depth);
      return 1;
    }
    BfsLevelsAlgorithm waves(k);
    const RunResult wave_result = run_exploration(tree, waves, config);
    const double d2 = static_cast<double>(tree.depth()) * tree.depth();
    table.add_row({"comb k=n", cell(std::int64_t{tree.depth()}),
                   cell(tree.num_nodes()), cell(k), cell(result.rounds),
                   cell(wave_result.rounds),
                   cell(static_cast<double>(result.rounds) / d2, 3),
                   cell(theorem1_bound(tree.num_nodes(), tree.depth(),
                                       tree.max_degree(), k) /
                            d2,
                        2)});
    if (prev_rounds > 0) {
      fitted_exponent = std::log(static_cast<double>(result.rounds) /
                                 prev_rounds) /
                        std::log(static_cast<double>(tree.depth()) /
                                 prev_depth);
    }
    prev_rounds = static_cast<double>(result.rounds);
    prev_depth = static_cast<double>(tree.depth());
  }
  // The k = n/D variant on random fixed-depth trees.
  for (const std::int32_t depth : {16, 32, 64}) {
    Rng child = rng.split();
    const std::int64_t n = static_cast<std::int64_t>(depth) * depth;
    const Tree tree = make_tree_with_depth(n, depth, child);
    const auto k = static_cast<std::int32_t>(
        std::max<std::int64_t>(1, n / depth));
    BfdnAlgorithm algo(k);
    RunConfig config;
    config.num_robots = k;
    const RunResult result = run_exploration(tree, algo, config);
    BfsLevelsAlgorithm waves(k);
    const RunResult wave_result = run_exploration(tree, waves, config);
    const double d2 = static_cast<double>(depth) * depth;
    table.add_row({"random k=n/D", cell(std::int64_t{depth}), cell(n),
                   cell(k), cell(result.rounds),
                   cell(wave_result.rounds),
                   cell(static_cast<double>(result.rounds) / d2, 3),
                   cell(theorem1_bound(n, depth, tree.max_degree(), k) /
                            d2,
                        2)});
  }
  std::printf("# E14 (open directions): rounds vs D^2 in the k >= n/D "
              "regime; fitted exponent of the last comb step: %.2f\n",
              fitted_exponent);
  std::fputs(cli.get_bool("csv") ? table.to_csv().c_str()
                                 : table.to_console().c_str(),
             stdout);
  return 0;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) { return bfdn::run(argc, argv); }
