// E5 — Figure 1 (measured): who actually wins on realizable trees.
//
// For a grid of (n, D) pairs we generate a random tree of exactly that
// size and depth, run the implemented algorithms (BFDN, BFDN_2, CTE,
// DN-swarm) plus the offline DFS-split schedule, and report the measured
// winner and the per-algorithm rounds. Complements the analytic map of
// bench_fig1_regions with real executions; absolute numbers differ from
// the guarantees, but the depth-driven crossover (BFDN shallow -> CTE
// deep) must appear.
#include <cstdio>

#include "baselines/cte.h"
#include "baselines/depth_next_only.h"
#include "baselines/offline.h"
#include "core/bfdn.h"
#include "graph/generators.h"
#include "recursive/bfdn_ell.h"
#include "sim/engine.h"
#include "support/cli.h"
#include "support/table.h"

namespace bfdn {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("bench_fig1_measured",
                "Figure 1 (measured): BFDN vs CTE vs BFDN_2 vs DN-swarm "
                "on an (n, D) grid of random trees");
  cli.add_int("k", 32, "robots");
  cli.add_int("seed", 112233, "tree generation seed");
  cli.add_bool("csv", false, "emit CSV");
  if (!cli.parse(argc, argv)) return 0;

  const auto k = static_cast<std::int32_t>(cli.get_int("k"));
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

  Table table({"n", "D", "BFDN", "BFDN_2", "CTE", "DN_swarm",
               "offline_split", "winner"});
  const std::vector<std::int64_t> sizes = {512, 2048, 8192};
  const std::vector<double> depth_fractions = {0.005, 0.02, 0.08, 0.3,
                                               0.8};
  for (const std::int64_t n : sizes) {
    for (const double fraction : depth_fractions) {
      const auto depth = static_cast<std::int32_t>(
          std::max<std::int64_t>(2, static_cast<std::int64_t>(
                                        fraction * static_cast<double>(n))));
      if (depth >= n) continue;
      Rng child = rng.split();
      const Tree tree = make_tree_with_depth(n, depth, child);

      RunConfig config;
      config.num_robots = k;
      BfdnAlgorithm bfdn_algo(k);
      const RunResult r_bfdn = run_exploration(tree, bfdn_algo, config);
      BfdnEllAlgorithm ell_algo(k, 2);
      const RunResult r_ell = run_exploration(tree, ell_algo, config);
      CteAlgorithm cte_algo(tree, k);
      const RunResult r_cte = run_exploration(tree, cte_algo, config);
      DepthNextOnlyAlgorithm dn_algo(k);
      const RunResult r_dn = run_exploration(tree, dn_algo, config);
      const OfflineSplitPlan plan = offline_dfs_split(tree, k);
      if (!r_bfdn.complete || !r_ell.complete || !r_cte.complete ||
          !r_dn.complete) {
        std::fprintf(stderr, "FATAL: incomplete run at n=%lld D=%d\n",
                     static_cast<long long>(n), depth);
        return 1;
      }

      const char* winner = "BFDN";
      std::int64_t best = r_bfdn.rounds;
      if (r_ell.rounds < best) {
        best = r_ell.rounds;
        winner = "BFDN_2";
      }
      if (r_cte.rounds < best) {
        best = r_cte.rounds;
        winner = "CTE";
      }
      if (r_dn.rounds < best) {
        best = r_dn.rounds;
        winner = "DN_swarm";
      }
      table.add_row({cell(n), cell(std::int64_t{depth}),
                     cell(r_bfdn.rounds), cell(r_ell.rounds),
                     cell(r_cte.rounds), cell(r_dn.rounds),
                     cell(plan.rounds), winner});
    }
  }
  std::printf("# E5 (Figure 1, measured): rounds per algorithm, k = %d\n",
              k);
  std::fputs(cli.get_bool("csv") ? table.to_csv().c_str()
                                 : table.to_console().c_str(),
             stdout);

  std::fputs("\n# Deep-gadget stack (CTE-favouring regime, n ~ 2kD)\n",
             stdout);
  Table gadget({"phases", "n", "D", "BFDN", "CTE", "winner"});
  for (std::int32_t phases : {10, 40, 120}) {
    Rng child = rng.split();
    const Tree tree = make_cte_hard_tree(k, phases, child);
    RunConfig config;
    config.num_robots = k;
    BfdnAlgorithm bfdn_algo(k);
    const RunResult r_bfdn = run_exploration(tree, bfdn_algo, config);
    CteAlgorithm cte_algo(tree, k);
    const RunResult r_cte = run_exploration(tree, cte_algo, config);
    gadget.add_row({cell(std::int64_t{phases}), cell(tree.num_nodes()),
                    cell(std::int64_t{tree.depth()}), cell(r_bfdn.rounds),
                    cell(r_cte.rounds),
                    r_cte.rounds < r_bfdn.rounds ? "CTE" : "BFDN"});
  }
  std::fputs(cli.get_bool("csv") ? gadget.to_csv().c_str()
                                 : gadget.to_console().c_str(),
             stdout);
  return 0;
}

}  // namespace
}  // namespace bfdn

int main(int argc, char** argv) { return bfdn::run(argc, argv); }
