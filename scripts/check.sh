#!/usr/bin/env sh
# Tier-1 verify plus a sanitized pass plus a fuzz smoke. Stages run in
# order and the script fails fast (set -eu): builds the tree in Release
# and runs the full suite, rebuilds with ASan/UBSan (RelWithDebInfo) in
# a separate build directory and re-runs the tests under the
# sanitizers, then runs the differential-oracle fuzzer for a short
# fixed-seed burst (see docs/VERIFY.md). Any leak, overflow, UB in the
# hot path, or oracle counterexample fails the gate.
set -eu
cd "$(dirname "$0")/.."

echo "== tier-1: Release build + full ctest =="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "== sanitized: ASan/UBSan build + full ctest =="
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build build-asan -j
ctest --test-dir build-asan --output-on-failure -j "$(nproc)"

echo "== fuzz smoke: differential oracle, fixed seed, all cores =="
./build/tools/bfdn_fuzz --budget-s=10 --seed=1 --jobs="$(nproc)"

echo "== bench smoke: fast-forward vs stepped, one Release cell =="
./build/bench/bench_hotpath --smoke > /dev/null

echo "== service smoke: serve + load mix + SIGTERM drain =="
rm -f build/serve.port
./build/tools/bfdn_serve --port=0 --port-file=build/serve.port \
  --queue=32 --cache=256 > build/serve.out 2>&1 &
SERVE_PID=$!
tries=0
while [ ! -s build/serve.port ]; do
  tries=$((tries + 1))
  [ "$tries" -le 100 ] || { echo "bfdn_serve never bound"; exit 1; }
  sleep 0.1
done
# Zero protocol errors and a real hit rate, or bfdn_load exits non-zero.
./build/tools/bfdn_load --port="$(cat build/serve.port)" \
  --connections=4 --cold=32 --requests=200 --hot-set=8 --nodes=1500 \
  --require-hit-rate=0.5 > /dev/null
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"   # graceful drain must exit 0

echo "check.sh: all gates passed."
