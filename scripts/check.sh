#!/usr/bin/env sh
# Tier-1 verify plus the correctness gates. Stages run in order and the
# script fails fast (set -eu):
#
#   lint      bfdn_lint over src/ and tools/ — layering back-edges,
#             determinism bans, unordered-container iteration in hashed
#             paths, trace-format drift, lock discipline (acquisition
#             order, annotation coverage, cv misuse) (rules:
#             scripts/lint_rules.json, rationale: docs/LINT.md)
#   tier-1    Release build + full ctest
#   tidy      clang-tidy baseline (skipped with a notice when the binary
#             is not installed — CI installs it)
#   tsa       clang -Werror=thread-safety compile of the whole tree,
#             proving the BFDN_GUARDED_BY/BFDN_REQUIRES contracts
#             (skipped with a notice when clang++ is not installed)
#   asan      ASan/UBSan rebuild + full ctest
#   tsan      ThreadSanitizer build of the concurrent service tier;
#             scheduler_stress_test, service_test, store_test,
#             cluster_test and support_test must report zero races
#   fuzz      differential-oracle fuzzer, short fixed-seed burst
#   bench     fast-forward vs stepped smoke
#   service   serve + load mix + SIGTERM drain
#   store     durable-store round trip: serve over a store dir, fill,
#             SIGTERM, restart, require the rewarm first pass to hit
#             the recovered segments
#   fleet     sharded fleet round trip: two shards behind bfdn_route,
#             routed load with a balance gate, shard-ownership probe,
#             kill one shard, require the survivor's keys to keep
#             answering ok (hot key reroutes) and the dead shard's to
#             answer retry
#
# Fast paths: `check.sh --lint-only` runs just lint + tidy (seconds, for
# pre-commit); `check.sh --tsan-only` runs just the tsan stage;
# `check.sh --locks-only` runs just the lock-discipline rules plus the
# clang thread-safety compile. `--require-tools` turns the
# skip-with-notice stages (tidy, tsa) into hard failures when their
# toolchain is missing — CI sets it so a broken clang install cannot
# silently green the gates.
set -eu
cd "$(dirname "$0")/.."

REQUIRE_TOOLS=0

lint_stage() {
  echo "== lint: layering, determinism, trace-format, locks (bfdn_lint) =="
  cmake --preset release > /dev/null
  cmake --build build -j --target bfdn_lint > /dev/null
  ./build/tools/bfdn_lint --root=.
}

locks_lint_stage() {
  echo "== lint: lock discipline only (bfdn_lint --only=locks) =="
  cmake --preset release > /dev/null
  cmake --build build -j --target bfdn_lint > /dev/null
  ./build/tools/bfdn_lint --root=. --only=locks
}

tidy_stage() {
  if command -v clang-tidy > /dev/null 2>&1; then
    echo "== tidy: clang-tidy baseline over src/ and tools/ =="
    find src tools -name '*.cpp' -print0 | xargs -0 -n 8 -P "$(nproc)" \
      clang-tidy -p build --quiet --warnings-as-errors='*'
  elif [ "$REQUIRE_TOOLS" -eq 1 ]; then
    echo "== tidy: clang-tidy not installed and --require-tools set ==" >&2
    exit 1
  else
    echo "== tidy: clang-tidy not installed; skipping (CI runs it) =="
  fi
}

tsa_stage() {
  if command -v clang++ > /dev/null 2>&1; then
    echo "== tsa: clang -Werror=thread-safety compile of the tree =="
    cmake --preset tsa > /dev/null
    cmake --build --preset tsa -j > /dev/null
    echo "tsa: thread-safety contracts hold."
  elif [ "$REQUIRE_TOOLS" -eq 1 ]; then
    echo "== tsa: clang++ not installed and --require-tools set ==" >&2
    exit 1
  else
    echo "== tsa: clang++ not installed; skipping (CI runs it) =="
  fi
}

tsan_stage() {
  echo "== tsan: race detection over the service tier =="
  cmake --preset tsan > /dev/null
  cmake --build --preset tsan -j > /dev/null
  ./build-tsan/tests/scheduler_stress_test
  ./build-tsan/tests/service_test
  ./build-tsan/tests/store_test
  ./build-tsan/tests/cluster_test
  ./build-tsan/tests/support_test
}

MODE=all
for arg in "$@"; do
  case "$arg" in
    --require-tools) REQUIRE_TOOLS=1 ;;
    --lint-only) MODE=lint ;;
    --tsan-only) MODE=tsan ;;
    --locks-only) MODE=locks ;;
    *)
      echo "usage: scripts/check.sh [--lint-only | --tsan-only | --locks-only] [--require-tools]" >&2
      exit 2
      ;;
  esac
done

case "$MODE" in
  lint)
    lint_stage
    tidy_stage
    echo "check.sh: lint gates passed."
    exit 0
    ;;
  tsan)
    tsan_stage
    echo "check.sh: tsan gate passed."
    exit 0
    ;;
  locks)
    locks_lint_stage
    tsa_stage
    echo "check.sh: lock-discipline gates passed."
    exit 0
    ;;
esac

lint_stage

echo "== tier-1: Release build + full ctest =="
cmake --preset release
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

tidy_stage

tsa_stage

echo "== sanitized: ASan/UBSan build + full ctest =="
cmake --preset asan
cmake --build build-asan -j
ctest --test-dir build-asan --output-on-failure -j "$(nproc)"

tsan_stage

echo "== fuzz smoke: differential oracle, fixed seed, all cores =="
./build/tools/bfdn_fuzz --budget-s=10 --seed=1 --jobs="$(nproc)"

echo "== async fuzz smoke: every case under an exotic scheduler =="
./build/tools/bfdn_fuzz --budget-s=10 --seed=2 --jobs="$(nproc)" \
  --async-p=1.0 --schedule-p=0.0

echo "== batch fuzz smoke: every case batch-equivalence checked =="
./build/tools/bfdn_fuzz --budget-s=10 --seed=3 --jobs="$(nproc)" \
  --batch-p=1.0

echo "== bench smoke: fast-forward vs stepped, one Release cell =="
./build/bench/bench_hotpath --smoke > /dev/null

echo "== bench smoke: batched campaign >= 3x solo loop, one cell =="
./build/bench/bench_campaign --smoke > /dev/null

echo "== bench smoke: async scheduler zoo vs lockstep, one cell =="
./build/bench/bench_async --smoke > /dev/null

echo "== bench smoke: store warm-start, recovery, write-behind =="
./build/bench/bench_store --smoke > /dev/null

echo "== bench smoke: fleet scaling, hot-key tail, segment ship =="
./build/bench/bench_cluster --smoke > /dev/null

echo "== service smoke: serve + load mix + SIGTERM drain =="
rm -f build/serve.port
./build/tools/bfdn_serve --port=0 --port-file=build/serve.port \
  --queue=32 --cache=256 > build/serve.out 2>&1 &
SERVE_PID=$!
tries=0
while [ ! -s build/serve.port ]; do
  tries=$((tries + 1))
  [ "$tries" -le 100 ] || { echo "bfdn_serve never bound"; exit 1; }
  sleep 0.1
done
# Zero protocol errors and a real hit rate, or bfdn_load exits non-zero.
./build/tools/bfdn_load --port="$(cat build/serve.port)" \
  --connections=4 --cold=32 --requests=200 --hot-set=8 --nodes=1500 \
  --require-hit-rate=0.5 > /dev/null
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"   # graceful drain must exit 0

echo "== store smoke: fill, SIGTERM, restart, rewarm must hit =="
rm -rf build/store-smoke
rm -f build/serve.port build/serve2.port
./build/tools/bfdn_serve --port=0 --port-file=build/serve.port \
  --queue=32 --cache=256 --store-dir=build/store-smoke \
  > build/serve.out 2>&1 &
SERVE_PID=$!
tries=0
while [ ! -s build/serve.port ]; do
  tries=$((tries + 1))
  [ "$tries" -le 100 ] || { echo "bfdn_serve never bound"; exit 1; }
  sleep 0.1
done
echo "$SERVE_PID" > build/serve.pid
# The restart command drains the first server (flushing its store) and
# boots a second one over the same directory; bfdn_load then replays
# the warm Zipf mix and requires the recovered store to serve it.
cat > build/store-restart.sh << 'RESTART'
#!/usr/bin/env sh
set -eu
kill -TERM "$(cat build/serve.pid)"
while kill -0 "$(cat build/serve.pid)" 2> /dev/null; do sleep 0.1; done
./build/tools/bfdn_serve --port=0 --port-file=build/serve2.port \
  --queue=32 --cache=256 --store-dir=build/store-smoke \
  > build/serve2.out 2>&1 &
echo $! > build/serve.pid
RESTART
chmod +x build/store-restart.sh
./build/tools/bfdn_load --port="$(cat build/serve.port)" \
  --connections=4 --cold=32 --requests=200 --hot-set=8 --nodes=1500 \
  --restart-phase --restart-port-file=build/serve2.port \
  --restart-cmd='./build/store-restart.sh' \
  --require-hit-rate=0.8 > /dev/null
SERVE2_PID="$(cat build/serve.pid)"
kill -TERM "$SERVE2_PID"
# serve2 is the restart script's child, not ours: poll instead of wait.
while kill -0 "$SERVE2_PID" 2> /dev/null; do sleep 0.1; done
rm -rf build/store-smoke

echo "== fleet smoke: route -> load -> kill shard -> reroute =="
SHARD0_PORT=7461
SHARD1_PORT=7462
rm -f build/route.port
./build/tools/bfdn_serve --port="$SHARD0_PORT" --peer-id=0 \
  --peers="$SHARD0_PORT,$SHARD1_PORT" --queue=32 --cache=256 \
  > build/shard0.out 2>&1 &
SHARD0_PID=$!
./build/tools/bfdn_serve --port="$SHARD1_PORT" --peer-id=1 \
  --peers="$SHARD0_PORT,$SHARD1_PORT" --queue=32 --cache=256 \
  > build/shard1.out 2>&1 &
SHARD1_PID=$!
./build/tools/bfdn_route --port=0 --port-file=build/route.port \
  --peers="$SHARD0_PORT,$SHARD1_PORT" --hot-threshold=4 \
  > build/route.out 2>&1 &
ROUTE_PID=$!
for port in "$SHARD0_PORT" "$SHARD1_PORT"; do
  tries=0
  until ./build/tools/bfdn_load --port="$port" \
    --probe='{"type":"stats"}' > /dev/null 2>&1; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || { echo "shard $port never bound"; exit 1; }
    sleep 0.1
  done
done
tries=0
while [ ! -s build/route.port ]; do
  tries=$((tries + 1))
  [ "$tries" -le 100 ] || { echo "bfdn_route never bound"; exit 1; }
  sleep 0.1
done
ROUTE_PORT="$(cat build/route.port)"
# Routed load: zero protocol errors and a balanced forward split across
# the two shards, or bfdn_load exits non-zero.
./build/tools/bfdn_load --port="$ROUTE_PORT" --router \
  --connections=4 --cold=32 --requests=200 --hot-set=8 --nodes=1500 \
  --require-balance=1.6 > /dev/null
# Routing introspection: the router must answer a shard probe with the
# owning peer list.
./build/tools/bfdn_load --port="$ROUTE_PORT" --probe='{"id":"own","type":"shard","family":"comb","nodes":300,"arms":8,"depth":5,"k":4,"seed":1}' \
  | grep -q '"owners":\[' || { echo "shard probe missing owners"; exit 1; }
# Heat one key past the hot threshold so it is replicated to both
# shards, then kill shard 0. The hot key must keep answering ok from
# the surviving replica; cold keys split into ok (survivor-owned) and
# retry (dead-shard-owned) — never a wrong byte, never a hang.
HOT_LINE='{"id":"hot","type":"run","family":"comb","nodes":300,"arms":8,"depth":5,"k":4,"seed":77}'
i=0
while [ "$i" -lt 6 ]; do
  ./build/tools/bfdn_load --port="$ROUTE_PORT" --probe="$HOT_LINE" \
    > /dev/null
  i=$((i + 1))
done
kill -TERM "$SHARD0_PID"
wait "$SHARD0_PID"   # graceful shard drain must exit 0
./build/tools/bfdn_load --port="$ROUTE_PORT" --probe="$HOT_LINE" \
  | grep -q '"status":"ok"' \
  || { echo "hot key did not reroute to the surviving replica"; exit 1; }
saw_ok=0
saw_retry=0
for seed in 1 2 3 4 5 6 7 8; do
  response="$(./build/tools/bfdn_load --port="$ROUTE_PORT" \
    --probe="{\"id\":\"c$seed\",\"type\":\"run\",\"family\":\"comb\",\"nodes\":300,\"arms\":8,\"depth\":5,\"k\":4,\"seed\":$seed}")"
  case "$response" in
    *'"status":"ok"'*) saw_ok=1 ;;
    *'"status":"retry"'*) saw_retry=1 ;;
    *) echo "unexpected fleet response: $response"; exit 1 ;;
  esac
done
[ "$saw_ok" -eq 1 ] && [ "$saw_retry" -eq 1 ] \
  || { echo "fleet kill: expected an ok + retry mix, got ok=$saw_ok retry=$saw_retry"; exit 1; }
kill -TERM "$SHARD1_PID" "$ROUTE_PID"
wait "$SHARD1_PID"   # graceful drains must exit 0
wait "$ROUTE_PID"

echo "check.sh: all gates passed."
