#!/usr/bin/env sh
# Tier-1 verify plus a sanitized pass plus a fuzz smoke. Stages run in
# order and the script fails fast (set -eu): builds the tree in Release
# and runs the full suite, rebuilds with ASan/UBSan (RelWithDebInfo) in
# a separate build directory and re-runs the tests under the
# sanitizers, then runs the differential-oracle fuzzer for a short
# fixed-seed burst (see docs/VERIFY.md). Any leak, overflow, UB in the
# hot path, or oracle counterexample fails the gate.
set -eu
cd "$(dirname "$0")/.."

echo "== tier-1: Release build + full ctest =="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "== sanitized: ASan/UBSan build + full ctest =="
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build build-asan -j
ctest --test-dir build-asan --output-on-failure -j "$(nproc)"

echo "== fuzz smoke: differential oracle, fixed seed, all cores =="
./build/tools/bfdn_fuzz --budget-s=10 --seed=1 --jobs="$(nproc)"

echo "== bench smoke: fast-forward vs stepped, one Release cell =="
./build/bench/bench_hotpath --smoke > /dev/null

echo "check.sh: all gates passed."
