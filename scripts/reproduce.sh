#!/usr/bin/env sh
# Rebuilds everything, runs the full test suite and every experiment
# bench, and collects the outputs under results/.
set -eu
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

mkdir -p results
ctest --test-dir build 2>&1 | tee results/tests.txt

for bench in build/bench/*; do
  name=$(basename "$bench")
  echo "== $name =="
  "$bench" | tee "results/$name.txt"
done

echo "All outputs collected under results/."
